#ifndef HYPERPROF_WORKLOADS_ARENA_H_
#define HYPERPROF_WORKLOADS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace hyperprof::workloads {

/**
 * Bump-pointer arena allocator with geometric block growth.
 *
 * Memory allocation is one of the paper's datacenter taxes (the Mallacc
 * accelerator in Figure 15 targets it). The arena is the fast path used by
 * the protowire message factories; the stress harness below exercises a
 * mixed malloc/free pattern for the allocation microbenchmarks.
 */
class Arena {
 public:
  /** @param initial_block_bytes Size of the first block (doubles after). */
  explicit Arena(size_t initial_block_bytes = 4096);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /** Allocates `bytes` with at least `alignment` (a power of two). */
  void* Allocate(size_t bytes, size_t alignment = 8);

  /** Drops all allocations but keeps the largest block for reuse. */
  void Reset();

  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size;
    size_t used;
  };

  void AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t next_block_bytes_;
  size_t bytes_allocated_ = 0;
};

/**
 * Runs a deterministic mixed allocate/free workload against the global
 * heap and returns a checksum over the touched memory (preventing the
 * optimizer from deleting the work). Models the malloc-heavy behaviour the
 * Mem. Allocation tax captures.
 *
 * @param operations Number of allocate-or-free steps.
 */
uint64_t MallocStress(size_t operations, Rng& rng);

/** Same workload shape served from an Arena, for the ablation bench. */
uint64_t ArenaStress(size_t operations, Rng& rng);

}  // namespace hyperprof::workloads

#endif  // HYPERPROF_WORKLOADS_ARENA_H_
