#include "workloads/checksum.h"

#include <array>
#include <cstring>

#include "common/cpu.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define HYPERPROF_CRC_X86 1
#endif

#if defined(__aarch64__)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC target("arch=armv8-a+crc")
#define HYPERPROF_CRC_POP_OPTIONS 1
#endif
#include <arm_acle.h>
#define HYPERPROF_CRC_AARCH64 1
#endif

namespace hyperprof::workloads {

namespace {

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, so eight table lookups
// retire eight input bytes per step.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xff] ^ (prev >> 8);
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables kTables = BuildTables();
  return kTables;
}

// Running-state (no final complement) CRC extension, portable path.
uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t size) {
  const SliceTables& t = Tables();
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, data, 8);  // little-endian host assumed
    word ^= crc;
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][word >> 56];
    data += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *data++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(HYPERPROF_CRC_X86)
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* data,
                                                          size_t size) {
  uint64_t state = crc;
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, data, 8);
    state = _mm_crc32_u64(state, word);
    data += 8;
    size -= 8;
  }
  uint32_t state32 = static_cast<uint32_t>(state);
  while (size-- > 0) {
    state32 = _mm_crc32_u8(state32, *data++);
  }
  return state32;
}
#elif defined(HYPERPROF_CRC_AARCH64)
uint32_t ExtendHardware(uint32_t crc, const uint8_t* data, size_t size) {
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, data, 8);
    crc = __crc32cd(crc, word);
    data += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = __crc32cb(crc, *data++);
  }
  return crc;
}
#endif

uint32_t ExtendDispatched(uint32_t crc, const uint8_t* data, size_t size) {
#if defined(HYPERPROF_CRC_X86) || defined(HYPERPROF_CRC_AARCH64)
  if (UseHardwareCrc32()) return ExtendHardware(crc, data, size);
#endif
  return ExtendPortable(crc, data, size);
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed) {
  return ~ExtendDispatched(~seed, data, size);
}

void Crc32cStream::Update(const uint8_t* data, size_t size) {
  state_ = ExtendDispatched(state_, data, size);
}

}  // namespace hyperprof::workloads

#if defined(HYPERPROF_CRC_POP_OPTIONS)
#pragma GCC pop_options
#endif
