#ifndef HYPERPROF_WORKLOADS_CHECKSUM_H_
#define HYPERPROF_WORKLOADS_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperprof::workloads {

/**
 * CRC32C (Castagnoli, reflected polynomial 0x82F63B78), table-driven.
 *
 * Checksumming is the EDAC system tax in the paper's Table 3; every block
 * the storage substrate "moves" is conceptually guarded by this kernel,
 * and the microbenchmarks time it directly.
 */
uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(const std::vector<uint8_t>& data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace hyperprof::workloads

#endif  // HYPERPROF_WORKLOADS_CHECKSUM_H_
