#ifndef HYPERPROF_WORKLOADS_CHECKSUM_H_
#define HYPERPROF_WORKLOADS_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperprof::workloads {

/**
 * CRC32C (Castagnoli, reflected polynomial 0x82F63B78).
 *
 * Checksumming is the EDAC system tax in the paper's Table 3; every block
 * the storage substrate "moves" is conceptually guarded by this kernel,
 * and the microbenchmarks time it directly.
 *
 * Two implementations sit behind the runtime dispatch layer
 * (`common/cpu.h`): a portable slicing-by-8 table walk (8 bytes per step,
 * eight 256-entry tables) and, under native dispatch on hardware that has
 * it, the dedicated CRC32 instruction (SSE4.2 `crc32` on x86-64, the CRC
 * extension on AArch64). Both produce bit-identical results on all
 * inputs; `HYPERPROF_KERNEL_DISPATCH=portable` pins the table path.
 */
uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(const std::vector<uint8_t>& data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/**
 * Incremental CRC32C over a stream of chunks. Feeding a buffer in any
 * chunking (including empty chunks) yields the same value as the one-shot
 * `Crc32c` over the concatenation. `value()` may be read at any point —
 * it is the checksum of everything fed so far — and the stream stays
 * usable afterwards.
 */
class Crc32cStream {
 public:
  explicit Crc32cStream(uint32_t seed = 0) { Reset(seed); }

  void Update(const uint8_t* data, size_t size);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }

  /** Checksum of all bytes fed since the last Reset. */
  uint32_t value() const { return ~state_; }

  void Reset(uint32_t seed = 0) { state_ = ~seed; }

 private:
  uint32_t state_;  // running CRC with the final complement not applied
};

}  // namespace hyperprof::workloads

#endif  // HYPERPROF_WORKLOADS_CHECKSUM_H_
