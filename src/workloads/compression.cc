#include "workloads/compression.h"

#include <algorithm>
#include <cstring>

namespace hyperprof::workloads {

namespace {

constexpr int kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxLiteralShortLen = 60;

uint32_t HashFour(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 0x1e35a7bdu) >> (32 - kHashBits);
}

void PutVarint32(std::vector<uint8_t>& out, uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

bool GetVarint32(const uint8_t*& p, const uint8_t* end, uint32_t* value) {
  uint32_t result = 0;
  int shift = 0;
  while (p < end && shift < 35) {
    uint8_t byte = *p++;
    // The 5th byte lands at shift 28: only its low 4 bits fit in 32 bits,
    // and a set continuation bit would make the encoding 6+ bytes. Reject
    // both instead of silently dropping the overflowing bits.
    if (shift == 28 && byte > 0x0f) return false;
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Counts how many bytes starting at `dst` equal the bytes at `src`,
// stopping at `limit`: eight bytes per comparison, with the first
// differing byte located by count-trailing-zeros on the XOR (little-endian
// host: low bits are earlier bytes).
size_t ExtendMatch(const uint8_t* src, const uint8_t* dst,
                   const uint8_t* limit) {
  const uint8_t* start = dst;
  while (dst + 8 <= limit) {
    uint64_t s, d;
    std::memcpy(&s, src, 8);
    std::memcpy(&d, dst, 8);
    uint64_t diff = s ^ d;
    if (diff != 0) {
      return static_cast<size_t>(dst - start) +
             (static_cast<size_t>(__builtin_ctzll(diff)) >> 3);
    }
    src += 8;
    dst += 8;
  }
  while (dst < limit && *src == *dst) {
    ++src;
    ++dst;
  }
  return static_cast<size_t>(dst - start);
}

void EmitLiteral(std::vector<uint8_t>& out, const uint8_t* data, size_t len) {
  while (len > 0) {
    size_t chunk = len;
    if (chunk <= kMaxLiteralShortLen - 1) {
      out.push_back(static_cast<uint8_t>((chunk - 1) << 2));
    } else {
      out.push_back(static_cast<uint8_t>(kMaxLiteralShortLen << 2));
      PutVarint32(out, static_cast<uint32_t>(chunk));
    }
    out.insert(out.end(), data, data + chunk);
    data += chunk;
    len -= chunk;
  }
}

void EmitCopy(std::vector<uint8_t>& out, size_t offset, size_t len) {
  // Break long matches into <=255-byte copies, never leaving a tail
  // shorter than the minimum copy length.
  while (len > 0) {
    size_t chunk = std::min<size_t>(len, 255);
    if (len > chunk && len - chunk < kMinMatch) {
      chunk = len - kMinMatch;
    }
    if (chunk <= 11 && offset < 2048) {
      out.push_back(static_cast<uint8_t>(
          1 | ((chunk - 4) << 2) | ((offset >> 8) << 5)));
      out.push_back(static_cast<uint8_t>(offset & 0xff));
    } else {
      out.push_back(static_cast<uint8_t>(2 | ((chunk & 0x3f) << 2)));
      out.push_back(static_cast<uint8_t>(chunk >> 6));
      out.push_back(static_cast<uint8_t>(offset & 0xff));
      out.push_back(static_cast<uint8_t>((offset >> 8) & 0xff));
    }
    len -= chunk;
  }
}

}  // namespace

std::vector<uint8_t> LzCodec::Compress(const uint8_t* input, size_t size) {
  std::vector<uint8_t> out;
  out.reserve(size / 2 + 16);
  PutVarint32(out, static_cast<uint32_t>(size));
  if (size == 0) return out;

  std::vector<uint32_t> table(kHashSize, 0xffffffffu);
  size_t pos = 0;
  size_t literal_start = 0;
  // Skip-ahead heuristic for incompressible input (as in the production
  // fast-path compressors): every 32 consecutive probe misses the stride
  // grows by one byte, so pure noise degrades toward memcpy speed instead
  // of paying a hash probe per byte. Any hit resets the stride.
  size_t skip = 32;

  while (pos + kMinMatch <= size) {
    uint32_t h = HashFour(input + pos);
    uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (candidate != 0xffffffffu && candidate < pos &&
        pos - candidate < 65536 &&
        std::memcmp(input + candidate, input + pos, kMinMatch) == 0) {
      skip = 32;
      // Extend the match 8 bytes at a time.
      size_t match_len =
          kMinMatch + ExtendMatch(input + candidate + kMinMatch,
                                  input + pos + kMinMatch, input + size);
      if (pos > literal_start) {
        EmitLiteral(out, input + literal_start, pos - literal_start);
      }
      EmitCopy(out, pos - candidate, match_len);
      // Seed hashes inside the match sparsely (every 4th byte) to keep
      // compression O(n).
      size_t seed_end = std::min(pos + match_len, size - kMinMatch);
      for (size_t i = pos + 1; i + 4 <= seed_end; i += 4) {
        table[HashFour(input + i)] = static_cast<uint32_t>(i);
      }
      pos += match_len;
      literal_start = pos;
    } else {
      pos += skip++ >> 5;
    }
  }
  if (size > literal_start) {
    EmitLiteral(out, input + literal_start, size - literal_start);
  }
  return out;
}

bool LzCodec::Decompress(const uint8_t* input, size_t size,
                         std::vector<uint8_t>* output) {
  output->clear();
  const uint8_t* p = input;
  const uint8_t* end = input + size;
  uint32_t expected_size;
  if (!GetVarint32(p, end, &expected_size)) return false;
  output->reserve(expected_size);

  while (p < end) {
    uint8_t tag = *p++;
    switch (tag & 0x3) {
      case 0: {  // literal
        size_t len = (tag >> 2) + 1;
        if (len == kMaxLiteralShortLen + 1) {
          uint32_t long_len;
          if (!GetVarint32(p, end, &long_len)) return false;
          len = long_len;
        }
        if (static_cast<size_t>(end - p) < len) return false;
        output->insert(output->end(), p, p + len);
        p += len;
        break;
      }
      case 1: {  // short copy
        if (p >= end) return false;
        size_t len = ((tag >> 2) & 0x7) + 4;
        size_t offset = (static_cast<size_t>(tag >> 5) << 8) | *p++;
        if (offset == 0 || offset > output->size()) return false;
        size_t start = output->size() - offset;
        for (size_t i = 0; i < len; ++i) {
          output->push_back((*output)[start + i]);
        }
        break;
      }
      case 2: {  // long copy
        if (end - p < 3) return false;
        size_t len = (tag >> 2) | (static_cast<size_t>(*p) << 6);
        ++p;
        size_t offset = static_cast<size_t>(p[0]) |
                        (static_cast<size_t>(p[1]) << 8);
        p += 2;
        if (offset == 0 || offset > output->size()) return false;
        size_t start = output->size() - offset;
        for (size_t i = 0; i < len; ++i) {
          output->push_back((*output)[start + i]);
        }
        break;
      }
      default:
        return false;
    }
  }
  if (output->size() != expected_size) return false;
  return true;
}

std::vector<uint8_t> GenerateCompressibleBuffer(size_t size, double entropy,
                                                Rng& rng) {
  entropy = std::clamp(entropy, 0.0, 1.0);
  std::vector<uint8_t> out;
  out.reserve(size);
  // A small dictionary of motifs reused with probability (1 - entropy).
  std::vector<std::vector<uint8_t>> motifs;
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> motif(16 + rng.NextBounded(48));
    for (auto& b : motif) b = static_cast<uint8_t>(rng.NextBounded(256));
    motifs.push_back(std::move(motif));
  }
  while (out.size() < size) {
    if (rng.NextBool(1.0 - entropy)) {
      const auto& motif = motifs[rng.NextBounded(motifs.size())];
      size_t take = std::min(motif.size(), size - out.size());
      out.insert(out.end(), motif.begin(), motif.begin() + take);
    } else {
      size_t run = std::min<size_t>(8 + rng.NextBounded(24),
                                    size - out.size());
      for (size_t i = 0; i < run; ++i) {
        out.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
      }
    }
  }
  return out;
}

}  // namespace hyperprof::workloads
