#ifndef HYPERPROF_WORKLOADS_COMPRESSION_H_
#define HYPERPROF_WORKLOADS_COMPRESSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace hyperprof::workloads {

/**
 * Byte-oriented LZ block codec in the Snappy family, from scratch.
 *
 * (De)compression is the largest datacenter tax for BigTable and BigQuery
 * in the paper; this codec is the real kernel behind those simulated
 * cycles and behind the compression microbenchmarks.
 *
 * Format: a varint uncompressed length, then a stream of ops.
 *   - Literal: tag byte (len-1) << 2 | 0, for len <= 60; longer literals
 *     use tag 60<<2|0 followed by a varint length.
 *   - Copy: tag byte 1 with 4-bit length (4..11) and 3 high offset bits +
 *     one offset byte (offset < 2048), or tag 2 with byte length and
 *     2-byte little-endian offset (offset < 65536).
 * Matches are found with a 16-bit hash table over 4-byte sequences, as in
 * the production fast-path compressors.
 */
class LzCodec {
 public:
  /** Compresses `input`; output always round-trips via Decompress. */
  static std::vector<uint8_t> Compress(const uint8_t* input, size_t size);
  static std::vector<uint8_t> Compress(const std::vector<uint8_t>& input) {
    return Compress(input.data(), input.size());
  }

  /**
   * Decompresses a block produced by Compress.
   * @return false on malformed input (output is cleared).
   */
  static bool Decompress(const uint8_t* input, size_t size,
                         std::vector<uint8_t>* output);
  static bool Decompress(const std::vector<uint8_t>& input,
                         std::vector<uint8_t>* output) {
    return Decompress(input.data(), input.size(), output);
  }
};

/**
 * Generates a synthetic buffer with tunable compressibility: runs of
 * repeated motifs (compressible) mixed with random bytes.
 *
 * @param entropy in [0,1]: 0 is a single repeated motif, 1 is pure noise.
 */
std::vector<uint8_t> GenerateCompressibleBuffer(size_t size, double entropy,
                                                Rng& rng);

}  // namespace hyperprof::workloads

#endif  // HYPERPROF_WORKLOADS_COMPRESSION_H_
