#include "workloads/protowire/message.h"

#include <cassert>
#include <cstring>

namespace hyperprof::protowire {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt64: return "int64";
    case FieldType::kSint64: return "sint64";
    case FieldType::kBool: return "bool";
    case FieldType::kDouble: return "double";
    case FieldType::kFloat: return "float";
    case FieldType::kString: return "string";
    case FieldType::kBytes: return "bytes";
    case FieldType::kMessage: return "message";
  }
  return "unknown";
}

const FieldDescriptor* Descriptor::FindField(uint32_t number) const {
  for (const auto& field : fields) {
    if (field.number == number) return &field;
  }
  return nullptr;
}

Message::Message(const Descriptor* descriptor) : descriptor_(descriptor) {
  assert(descriptor != nullptr);
}

Message::FieldSlot* Message::FindSlot(uint32_t number) {
  for (auto& slot : slots_) {
    if (slot.number == number) return &slot;
  }
  return nullptr;
}

const Message::FieldSlot* Message::FindSlot(uint32_t number) const {
  for (const auto& slot : slots_) {
    if (slot.number == number) return &slot;
  }
  return nullptr;
}

Message::FieldSlot& Message::SlotFor(uint32_t number) {
  if (FieldSlot* slot = FindSlot(number)) return *slot;
  slots_.push_back(FieldSlot{number, {}});
  return slots_.back();
}

void Message::AddInt64(uint32_t number, int64_t value) {
  const FieldDescriptor* field = descriptor_->FindField(number);
  assert(field &&
         (field->type == FieldType::kInt64 ||
          field->type == FieldType::kSint64));
  FieldSlot& slot = SlotFor(number);
  if (!field->repeated) slot.values.clear();
  slot.values.emplace_back(value);
}

void Message::AddBool(uint32_t number, bool value) {
  const FieldDescriptor* field = descriptor_->FindField(number);
  assert(field && field->type == FieldType::kBool);
  FieldSlot& slot = SlotFor(number);
  if (!field->repeated) slot.values.clear();
  slot.values.emplace_back(value);
}

void Message::AddDouble(uint32_t number, double value) {
  const FieldDescriptor* field = descriptor_->FindField(number);
  assert(field && field->type == FieldType::kDouble);
  FieldSlot& slot = SlotFor(number);
  if (!field->repeated) slot.values.clear();
  slot.values.emplace_back(value);
}

void Message::AddFloat(uint32_t number, float value) {
  const FieldDescriptor* field = descriptor_->FindField(number);
  assert(field && field->type == FieldType::kFloat);
  FieldSlot& slot = SlotFor(number);
  if (!field->repeated) slot.values.clear();
  slot.values.emplace_back(value);
}

void Message::AddString(uint32_t number, std::string value) {
  const FieldDescriptor* field = descriptor_->FindField(number);
  assert(field && (field->type == FieldType::kString ||
                   field->type == FieldType::kBytes));
  FieldSlot& slot = SlotFor(number);
  if (!field->repeated) slot.values.clear();
  slot.values.emplace_back(std::move(value));
}

void Message::AddMessage(uint32_t number, std::unique_ptr<Message> value) {
  const FieldDescriptor* field = descriptor_->FindField(number);
  assert(field && field->type == FieldType::kMessage);
  assert(value && value->descriptor() == field->message_type);
  FieldSlot& slot = SlotFor(number);
  if (!field->repeated) slot.values.clear();
  slot.values.emplace_back(std::move(value));
}

const std::vector<FieldValue>& Message::ValuesOf(uint32_t number) const {
  static const std::vector<FieldValue> kEmpty;
  const FieldSlot* slot = FindSlot(number);
  return slot ? slot->values : kEmpty;
}

namespace {

size_t ValueWireSize(const FieldDescriptor& field, const FieldValue& value) {
  size_t tag = VarintSize(static_cast<uint64_t>(field.number) << 3);
  switch (field.type) {
    case FieldType::kInt64:
      return tag + VarintSize(static_cast<uint64_t>(std::get<int64_t>(value)));
    case FieldType::kSint64:
      return tag + VarintSize(ZigZagEncode(std::get<int64_t>(value)));
    case FieldType::kBool:
      return tag + 1;
    case FieldType::kDouble:
      return tag + 8;
    case FieldType::kFloat:
      return tag + 4;
    case FieldType::kString:
    case FieldType::kBytes: {
      const std::string& s = std::get<std::string>(value);
      return tag + VarintSize(s.size()) + s.size();
    }
    case FieldType::kMessage: {
      size_t payload = std::get<std::unique_ptr<Message>>(value)->ByteSize();
      return tag + VarintSize(payload) + payload;
    }
  }
  return 0;
}

}  // namespace

size_t Message::ByteSize() const {
  size_t total = 0;
  for (const auto& slot : slots_) {
    const FieldDescriptor* field = descriptor_->FindField(slot.number);
    assert(field != nullptr);
    for (const auto& value : slot.values) {
      total += ValueWireSize(*field, value);
    }
  }
  return total;
}

size_t Message::ComputeSizes(std::vector<size_t>& sizes) const {
  size_t my_index = sizes.size();
  sizes.push_back(0);
  size_t total = 0;
  for (const auto& slot : slots_) {
    const FieldDescriptor* field = descriptor_->FindField(slot.number);
    assert(field != nullptr);
    for (const auto& value : slot.values) {
      if (field->type == FieldType::kMessage) {
        size_t tag = VarintSize(static_cast<uint64_t>(field->number) << 3);
        size_t payload =
            std::get<std::unique_ptr<Message>>(value)->ComputeSizes(sizes);
        total += tag + VarintSize(payload) + payload;
      } else {
        total += ValueWireSize(*field, value);
      }
    }
  }
  sizes[my_index] = total;
  return total;
}

void Message::SerializeTo(WireBuffer& out) const {
  // Reused scratch: SerializeWithSizes recurses into itself, never back
  // into SerializeTo, so one per-thread vector serves the whole tree and
  // steady-state serialization does not allocate for sizes.
  thread_local std::vector<size_t> sizes;
  sizes.clear();
  size_t total = ComputeSizes(sizes);
  out.reserve(out.size() + total);
  size_t cursor = 0;
  SerializeWithSizes(out, sizes, cursor);
}

void Message::SerializeWithSizes(WireBuffer& out,
                                 const std::vector<size_t>& sizes,
                                 size_t& cursor) const {
  ++cursor;  // past this message's own entry
  for (const auto& slot : slots_) {
    const FieldDescriptor* field = descriptor_->FindField(slot.number);
    assert(field != nullptr);
    for (const auto& value : slot.values) {
      switch (field->type) {
        case FieldType::kInt64:
          PutTag(out, field->number, WireType::kVarint);
          PutVarint(out, static_cast<uint64_t>(std::get<int64_t>(value)));
          break;
        case FieldType::kSint64:
          PutTag(out, field->number, WireType::kVarint);
          PutSignedVarint(out, std::get<int64_t>(value));
          break;
        case FieldType::kBool:
          PutTag(out, field->number, WireType::kVarint);
          PutVarint(out, std::get<bool>(value) ? 1 : 0);
          break;
        case FieldType::kDouble: {
          PutTag(out, field->number, WireType::kFixed64);
          uint64_t bits;
          double v = std::get<double>(value);
          std::memcpy(&bits, &v, 8);
          PutFixed64(out, bits);
          break;
        }
        case FieldType::kFloat: {
          PutTag(out, field->number, WireType::kFixed32);
          uint32_t bits;
          float v = std::get<float>(value);
          std::memcpy(&bits, &v, 4);
          PutFixed32(out, bits);
          break;
        }
        case FieldType::kString:
        case FieldType::kBytes:
          PutTag(out, field->number, WireType::kLengthDelimited);
          PutLengthDelimited(out, std::get<std::string>(value));
          break;
        case FieldType::kMessage: {
          const Message& nested = *std::get<std::unique_ptr<Message>>(value);
          PutTag(out, field->number, WireType::kLengthDelimited);
          PutVarint(out, sizes[cursor]);  // nested total, preorder position
          nested.SerializeWithSizes(out, sizes, cursor);
          break;
        }
      }
    }
  }
}

WireBuffer Message::Serialize() const {
  WireBuffer out;
  SerializeTo(out);
  return out;
}

std::unique_ptr<Message> Message::Parse(const Descriptor* descriptor,
                                        const uint8_t* data, size_t size) {
  auto message = std::make_unique<Message>(descriptor);
  WireReader reader(data, size);
  while (!reader.AtEnd()) {
    uint32_t number;
    WireType wire;
    if (!reader.GetTag(&number, &wire)) return nullptr;
    const FieldDescriptor* field = descriptor->FindField(number);
    if (field == nullptr) {
      if (!reader.SkipField(wire)) return nullptr;
      continue;
    }
    switch (field->type) {
      case FieldType::kInt64: {
        if (wire != WireType::kVarint) return nullptr;
        uint64_t v;
        if (!reader.GetVarint(&v)) return nullptr;
        message->AddInt64(number, static_cast<int64_t>(v));
        break;
      }
      case FieldType::kSint64: {
        if (wire != WireType::kVarint) return nullptr;
        int64_t v;
        if (!reader.GetSignedVarint(&v)) return nullptr;
        message->AddInt64(number, v);
        break;
      }
      case FieldType::kBool: {
        if (wire != WireType::kVarint) return nullptr;
        uint64_t v;
        if (!reader.GetVarint(&v)) return nullptr;
        message->AddBool(number, v != 0);
        break;
      }
      case FieldType::kDouble: {
        if (wire != WireType::kFixed64) return nullptr;
        uint64_t bits;
        if (!reader.GetFixed64(&bits)) return nullptr;
        double v;
        std::memcpy(&v, &bits, 8);
        message->AddDouble(number, v);
        break;
      }
      case FieldType::kFloat: {
        if (wire != WireType::kFixed32) return nullptr;
        uint32_t bits;
        if (!reader.GetFixed32(&bits)) return nullptr;
        float v;
        std::memcpy(&v, &bits, 4);
        message->AddFloat(number, v);
        break;
      }
      case FieldType::kString:
      case FieldType::kBytes: {
        if (wire != WireType::kLengthDelimited) return nullptr;
        const uint8_t* payload;
        size_t payload_size;
        if (!reader.GetLengthDelimited(&payload, &payload_size)) {
          return nullptr;
        }
        message->AddString(
            number, std::string(reinterpret_cast<const char*>(payload),
                                payload_size));
        break;
      }
      case FieldType::kMessage: {
        if (wire != WireType::kLengthDelimited) return nullptr;
        const uint8_t* payload;
        size_t payload_size;
        if (!reader.GetLengthDelimited(&payload, &payload_size)) {
          return nullptr;
        }
        auto nested = Parse(field->message_type, payload, payload_size);
        if (nested == nullptr) return nullptr;
        message->AddMessage(number, std::move(nested));
        break;
      }
    }
  }
  return message;
}

namespace {

bool ValueEquals(const FieldValue& a, const FieldValue& b) {
  if (a.index() != b.index()) return false;
  if (std::holds_alternative<std::unique_ptr<Message>>(a)) {
    return std::get<std::unique_ptr<Message>>(a)->Equals(
        *std::get<std::unique_ptr<Message>>(b));
  }
  return a == b;
}

}  // namespace

bool Message::Equals(const Message& other) const {
  if (descriptor_ != other.descriptor_) return false;
  // Compare per-field, tolerating slot-order differences.
  for (const auto& field : descriptor_->fields) {
    const auto& mine = ValuesOf(field.number);
    const auto& theirs = other.ValuesOf(field.number);
    if (mine.size() != theirs.size()) return false;
    for (size_t i = 0; i < mine.size(); ++i) {
      if (!ValueEquals(mine[i], theirs[i])) return false;
    }
  }
  return true;
}

size_t Message::DeepValueCount() const {
  size_t count = 0;
  for (const auto& slot : slots_) {
    for (const auto& value : slot.values) {
      ++count;
      if (std::holds_alternative<std::unique_ptr<Message>>(value)) {
        count += std::get<std::unique_ptr<Message>>(value)->DeepValueCount();
      }
    }
  }
  return count;
}

Descriptor* SchemaPool::Add(std::string name) {
  descriptors_.push_back(std::make_unique<Descriptor>());
  descriptors_.back()->name = std::move(name);
  return descriptors_.back().get();
}

}  // namespace hyperprof::protowire
