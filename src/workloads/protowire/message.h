#ifndef HYPERPROF_WORKLOADS_PROTOWIRE_MESSAGE_H_
#define HYPERPROF_WORKLOADS_PROTOWIRE_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "workloads/protowire/wire.h"

namespace hyperprof::protowire {

/** Logical field types (a representative subset of proto3 scalars). */
enum class FieldType : uint8_t {
  kInt64,    // varint
  kSint64,   // zigzag varint
  kBool,     // varint 0/1
  kDouble,   // fixed64
  kFloat,    // fixed32
  kString,   // length-delimited
  kBytes,    // length-delimited
  kMessage,  // length-delimited nested message
};

const char* FieldTypeName(FieldType type);

struct Descriptor;

/** Schema of one field. */
struct FieldDescriptor {
  uint32_t number = 0;
  FieldType type = FieldType::kInt64;
  bool repeated = false;
  std::string name;
  // Set iff type == kMessage. Owned by the schema pool; non-null for
  // message fields of a validated descriptor.
  const Descriptor* message_type = nullptr;
};

/** Schema of one message type: fields ordered by field number. */
struct Descriptor {
  std::string name;
  std::vector<FieldDescriptor> fields;

  /** Returns the field with the given number, or nullptr. */
  const FieldDescriptor* FindField(uint32_t number) const;
};

class Message;

/** A single field value; repeated fields hold several FieldValues. */
using FieldValue = std::variant<int64_t, bool, double, float, std::string,
                                std::unique_ptr<Message>>;

/**
 * Dynamically-typed message instance bound to a Descriptor.
 *
 * Values are stored per field in declaration order; repeated fields carry
 * multiple values. This mirrors how reflective protobuf runtimes hold
 * parsed data and gives serialization a realistic memory-access pattern
 * (pointer-chasing into nested messages, string copies).
 */
class Message {
 public:
  explicit Message(const Descriptor* descriptor);

  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  Message(Message&&) = default;
  Message& operator=(Message&&) = default;

  const Descriptor* descriptor() const { return descriptor_; }

  /** Appends a value to field `number` (scalar fields: sets/overwrites). */
  void AddInt64(uint32_t number, int64_t value);
  void AddBool(uint32_t number, bool value);
  void AddDouble(uint32_t number, double value);
  void AddFloat(uint32_t number, float value);
  void AddString(uint32_t number, std::string value);
  void AddMessage(uint32_t number, std::unique_ptr<Message> value);

  /** Values present for a field (empty when unset). */
  const std::vector<FieldValue>& ValuesOf(uint32_t number) const;
  size_t FieldCount(uint32_t number) const { return ValuesOf(number).size(); }

  /** Serialized wire size in bytes (computed, not cached). */
  size_t ByteSize() const;

  /**
   * Appends the wire encoding of this message to `out`. Sizes of the whole
   * tree are precomputed in one pass and the buffer is grown once, so
   * nested length prefixes never recompute their subtree's ByteSize.
   */
  void SerializeTo(WireBuffer& out) const;

  /** Serializes into a fresh buffer. */
  WireBuffer Serialize() const;

  /**
   * Parses wire bytes into a message of type `descriptor`.
   * Unknown fields are skipped (proto semantics). Returns nullptr on
   * malformed input.
   */
  static std::unique_ptr<Message> Parse(const Descriptor* descriptor,
                                        const uint8_t* data, size_t size);

  /** Structural equality on descriptor identity and all field values. */
  bool Equals(const Message& other) const;

  /** Total number of set values across all fields, including nested. */
  size_t DeepValueCount() const;

 private:
  struct FieldSlot {
    uint32_t number;
    std::vector<FieldValue> values;
  };

  FieldSlot* FindSlot(uint32_t number);
  const FieldSlot* FindSlot(uint32_t number) const;
  FieldSlot& SlotFor(uint32_t number);

  // Preorder byte-size computation: appends this message's total wire size
  // followed by every nested message's (depth-first, serialization order),
  // and returns this message's total. SerializeWithSizes consumes the same
  // vector with a cursor instead of re-deriving sizes per nesting level.
  size_t ComputeSizes(std::vector<size_t>& sizes) const;
  void SerializeWithSizes(WireBuffer& out, const std::vector<size_t>& sizes,
                          size_t& cursor) const;

  const Descriptor* descriptor_;
  std::vector<FieldSlot> slots_;
};

/**
 * Owning pool of message schemas; descriptors hand out stable pointers.
 *
 * Nested message fields reference descriptors in the same pool, so the pool
 * must outlive all Messages created against it.
 */
class SchemaPool {
 public:
  /** Creates a new empty descriptor with the given type name. */
  Descriptor* Add(std::string name);

  size_t size() const { return descriptors_.size(); }
  const Descriptor* at(size_t i) const { return descriptors_[i].get(); }

 private:
  std::vector<std::unique_ptr<Descriptor>> descriptors_;
};

}  // namespace hyperprof::protowire

#endif  // HYPERPROF_WORKLOADS_PROTOWIRE_MESSAGE_H_
