#include "workloads/protowire/synthetic.h"

#include <algorithm>
#include <string>

#include "common/strings.h"

namespace hyperprof::protowire {

namespace {

const Descriptor* GenerateSchemaAtDepth(SchemaPool& pool,
                                        const SyntheticSchemaParams& params,
                                        int depth, Rng& rng) {
  Descriptor* descriptor =
      pool.Add(StrFormat("Synthetic.D%d.N%zu", depth, pool.size()));
  uint32_t next_number = 1;

  auto add_field = [&](FieldType type, const Descriptor* nested) {
    FieldDescriptor field;
    field.number = next_number++;
    field.type = type;
    field.repeated = rng.NextBool(params.repeated_probability);
    field.name = StrFormat("f%u_%s", field.number, FieldTypeName(type));
    field.message_type = nested;
    descriptor->fields.push_back(std::move(field));
  };

  static const FieldType kScalarTypes[] = {
      FieldType::kInt64, FieldType::kSint64, FieldType::kBool,
      FieldType::kDouble, FieldType::kFloat};
  for (int i = 0; i < params.num_scalar_fields; ++i) {
    add_field(kScalarTypes[rng.NextBounded(std::size(kScalarTypes))],
              nullptr);
  }
  for (int i = 0; i < params.num_string_fields; ++i) {
    add_field(rng.NextBool(0.5) ? FieldType::kString : FieldType::kBytes,
              nullptr);
  }
  if (depth < params.max_depth) {
    for (int i = 0; i < params.num_message_fields; ++i) {
      const Descriptor* nested =
          GenerateSchemaAtDepth(pool, params, depth + 1, rng);
      add_field(FieldType::kMessage, nested);
    }
  }
  return descriptor;
}

std::string RandomString(const SyntheticSchemaParams& params, Rng& rng) {
  double len = rng.NextLogNormal(params.string_len_mu, params.string_len_sigma);
  size_t size = static_cast<size_t>(std::clamp(len, 1.0, 4096.0));
  std::string out(size, '\0');
  for (auto& c : out) {
    c = static_cast<char>('a' + rng.NextBounded(26));
  }
  return out;
}

}  // namespace

const Descriptor* GenerateSchema(SchemaPool& pool,
                                 const SyntheticSchemaParams& params,
                                 Rng& rng) {
  return GenerateSchemaAtDepth(pool, params, 0, rng);
}

std::unique_ptr<Message> GenerateMessage(const Descriptor* descriptor,
                                         const SyntheticSchemaParams& params,
                                         Rng& rng) {
  auto message = std::make_unique<Message>(descriptor);
  for (const auto& field : descriptor->fields) {
    if (!rng.NextBool(params.field_presence)) continue;
    int count =
        field.repeated
            ? static_cast<int>(rng.NextInt(1, params.max_repeated_count))
            : 1;
    for (int i = 0; i < count; ++i) {
      switch (field.type) {
        case FieldType::kInt64:
        case FieldType::kSint64:
          message->AddInt64(field.number,
                            static_cast<int64_t>(rng.Next() >> 16) -
                                (1LL << 46));
          break;
        case FieldType::kBool:
          message->AddBool(field.number, rng.NextBool(0.5));
          break;
        case FieldType::kDouble:
          message->AddDouble(field.number, rng.NextGaussian() * 1e6);
          break;
        case FieldType::kFloat:
          message->AddFloat(field.number,
                            static_cast<float>(rng.NextGaussian()));
          break;
        case FieldType::kString:
        case FieldType::kBytes:
          message->AddString(field.number, RandomString(params, rng));
          break;
        case FieldType::kMessage:
          message->AddMessage(field.number,
                              GenerateMessage(field.message_type, params,
                                              rng));
          break;
      }
    }
  }
  return message;
}

std::vector<std::unique_ptr<Message>> GenerateMessages(
    const Descriptor* descriptor, const SyntheticSchemaParams& params,
    int count, Rng& rng) {
  std::vector<std::unique_ptr<Message>> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(GenerateMessage(descriptor, params, rng));
  }
  return out;
}

}  // namespace hyperprof::protowire
