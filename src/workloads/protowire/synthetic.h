#ifndef HYPERPROF_WORKLOADS_PROTOWIRE_SYNTHETIC_H_
#define HYPERPROF_WORKLOADS_PROTOWIRE_SYNTHETIC_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "workloads/protowire/message.h"

namespace hyperprof::protowire {

/**
 * Shape parameters for fleet-representative synthetic protobuf messages.
 *
 * Defaults approximate the message population of HyperProtoBench (the
 * fleet-derived protobuf benchmark the paper's validation builds on):
 * string-heavy messages with shallow nesting, mixed scalar fields, and
 * lognormal string lengths.
 */
struct SyntheticSchemaParams {
  int num_scalar_fields = 6;      // scalar fields per message type
  int num_string_fields = 4;      // string/bytes fields per message type
  int num_message_fields = 2;     // nested-message fields per type
  int max_depth = 3;              // nesting depth of the schema tree
  double repeated_probability = 0.25;
  double string_len_mu = 3.2;     // lognormal: median ~ e^3.2 ~ 24 bytes
  double string_len_sigma = 1.1;
  double field_presence = 0.8;    // probability a field is populated
  int max_repeated_count = 8;
};

/**
 * Generates a random message schema tree into `pool`.
 *
 * @return the root descriptor. Descriptors remain owned by the pool.
 */
const Descriptor* GenerateSchema(SchemaPool& pool,
                                 const SyntheticSchemaParams& params,
                                 Rng& rng);

/** Populates one message instance of the given schema. */
std::unique_ptr<Message> GenerateMessage(const Descriptor* descriptor,
                                         const SyntheticSchemaParams& params,
                                         Rng& rng);

/** Generates `count` independent message instances. */
std::vector<std::unique_ptr<Message>> GenerateMessages(
    const Descriptor* descriptor, const SyntheticSchemaParams& params,
    int count, Rng& rng);

}  // namespace hyperprof::protowire

#endif  // HYPERPROF_WORKLOADS_PROTOWIRE_SYNTHETIC_H_
