#include "workloads/protowire/wire.h"

#include <cstring>

namespace hyperprof::protowire {

void PutVarint(WireBuffer& out, uint64_t value) {
  // Size the encoding up front (branchless, via VarintSize's bit scan) and
  // grow the buffer once; per-byte push_back pays a capacity check and a
  // size bump for every 7 bits.
  size_t length = VarintSize(value);
  size_t old_size = out.size();
  out.resize(old_size + length);
  if (length <= 8) {
    // Branchless fast path for values below 2^56: spread the 7-bit groups
    // across byte lanes with three SWAR deposit steps, OR in the
    // continuation bits for all but the last byte, and store the encoded
    // bytes with a single length-wide copy — no per-byte shift chain.
    uint64_t x = value;
    x = (x & 0x000000000fffffffull) | ((x & 0x00fffffff0000000ull) << 4);
    x = (x & 0x00003fff00003fffull) | ((x & 0x0fffc0000fffc000ull) << 2);
    x = (x & 0x007f007f007f007full) | ((x & 0x3f803f803f803f80ull) << 1);
    x |= 0x8080808080808080ull & ((1ull << (8 * (length - 1))) - 1);
    std::memcpy(out.data() + old_size, &x, length);  // little-endian host
  } else {
    uint8_t* p = out.data() + old_size;
    for (size_t i = 1; i < length; ++i) {
      *p++ = static_cast<uint8_t>(value) | 0x80;
      value >>= 7;
    }
    *p = static_cast<uint8_t>(value);
  }
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

void PutSignedVarint(WireBuffer& out, int64_t value) {
  PutVarint(out, ZigZagEncode(value));
}

void PutFixed32(WireBuffer& out, uint32_t value) {
  size_t old_size = out.size();
  out.resize(old_size + 4);
  std::memcpy(out.data() + old_size, &value, 4);  // little-endian host
}

void PutFixed64(WireBuffer& out, uint64_t value) {
  size_t old_size = out.size();
  out.resize(old_size + 8);
  std::memcpy(out.data() + old_size, &value, 8);  // little-endian host
}

void PutTag(WireBuffer& out, uint32_t field_number, WireType type) {
  PutVarint(out, (static_cast<uint64_t>(field_number) << 3) |
                     static_cast<uint64_t>(type));
}

void PutLengthDelimited(WireBuffer& out, const uint8_t* data, size_t size) {
  PutVarint(out, size);
  out.insert(out.end(), data, data + size);
}

void PutLengthDelimited(WireBuffer& out, const std::string& data) {
  PutLengthDelimited(out, reinterpret_cast<const uint8_t*>(data.data()),
                     data.size());
}

size_t VarintSize(uint64_t value) {
  // ceil(bits/7) without a loop: highest set bit via clz (value|1 keeps
  // the scan defined for zero), then the protobuf (log2*9 + 73)/64 trick.
  uint32_t log2 = 63u ^ static_cast<uint32_t>(__builtin_clzll(value | 1));
  return (log2 * 9 + 73) / 64;
}

bool WireReader::GetVarint(uint64_t* value) {
  const uint8_t* p = data_ + pos_;
  size_t available = size_ - pos_;
  if (available >= 8) {
    // Word-at-a-time fast path: one load covers every varint of up to 8
    // bytes (values below 2^56). The terminating byte (clear continuation
    // bit) is located with a count-trailing-zeros, the word is masked to
    // the encoding's bytes, and the 7-bit groups are compacted with three
    // branchless SWAR folds — no per-byte loads, shifts, or branches.
    uint64_t word;
    std::memcpy(&word, p, 8);  // little-endian host assumed
    uint64_t stops = ~word & 0x8080808080808080ull;
    uint64_t x = word & 0x7f7f7f7f7f7f7f7full;
    if (stops != 0) {
      // stops ^ (stops - 1) keeps every bit up to and including the
      // terminator byte's top bit: a mask of exactly `length` bytes.
      x &= stops ^ (stops - 1);
    }
    x = ((x & 0x7f007f007f007f00ull) >> 1) | (x & 0x007f007f007f007full);
    x = ((x & 0x3fff00003fff0000ull) >> 2) | (x & 0x00003fff00003fffull);
    x = ((x & 0x0fffffff00000000ull) >> 4) | (x & 0x000000000fffffffull);
    if (stops != 0) {
      pos_ += (static_cast<size_t>(__builtin_ctzll(stops)) >> 3) + 1;
      *value = x;
      return true;
    }
    // All eight loaded bytes were continuations: a 9- or 10-byte varint
    // (or garbage). `x` already folds the low 56 bits.
    if (available >= 9) {
      uint8_t byte8 = p[8];
      if (byte8 < 0x80) {
        pos_ += 9;
        *value = x | (static_cast<uint64_t>(byte8) << 56);
        return true;
      }
      if (available >= 10) {
        uint8_t byte9 = p[9];
        // The 10th byte may only contribute its lowest bit (shift 63);
        // a larger payload overflows uint64 and a set continuation bit
        // would mean an 11-byte encoding — both are rejected rather than
        // silently truncated.
        if (byte9 <= 1) {
          pos_ += 10;
          *value = x | (static_cast<uint64_t>(byte8 & 0x7f) << 56) |
                   (static_cast<uint64_t>(byte9) << 63);
          return true;
        }
      }
    }
    return false;  // overflowing, >10 bytes, or truncated
  }
  // Tail path: fewer than 8 bytes left in the buffer. Same accept/reject
  // rules as above (the 10-byte bound is unreachable here).
  uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    uint8_t byte = data_[pos_++];
    if (shift == 63 && byte > 1) return false;  // overflow or >10 bytes
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated
}

bool WireReader::GetSignedVarint(int64_t* value) {
  uint64_t raw;
  if (!GetVarint(&raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

bool WireReader::GetFixed32(uint32_t* value) {
  if (pos_ + 4 > size_) return false;
  uint32_t v = 0;
  std::memcpy(&v, data_ + pos_, 4);  // little-endian host assumed
  pos_ += 4;
  *value = v;
  return true;
}

bool WireReader::GetFixed64(uint64_t* value) {
  if (pos_ + 8 > size_) return false;
  uint64_t v = 0;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  *value = v;
  return true;
}

bool WireReader::GetTag(uint32_t* field_number, WireType* type) {
  uint64_t raw;
  if (!GetVarint(&raw)) return false;
  uint64_t number = raw >> 3;
  uint64_t wire = raw & 0x7;
  if (number == 0 || number > 0x1fffffff) return false;
  if (wire != 0 && wire != 1 && wire != 2 && wire != 5) return false;
  *field_number = static_cast<uint32_t>(number);
  *type = static_cast<WireType>(wire);
  return true;
}

bool WireReader::GetLengthDelimited(const uint8_t** data, size_t* size) {
  uint64_t length;
  if (!GetVarint(&length)) return false;
  if (length > size_ - pos_) return false;
  *data = data_ + pos_;
  *size = static_cast<size_t>(length);
  pos_ += static_cast<size_t>(length);
  return true;
}

bool WireReader::SkipField(WireType type) {
  switch (type) {
    case WireType::kVarint: {
      uint64_t ignored;
      return GetVarint(&ignored);
    }
    case WireType::kFixed64: {
      if (pos_ + 8 > size_) return false;
      pos_ += 8;
      return true;
    }
    case WireType::kFixed32: {
      if (pos_ + 4 > size_) return false;
      pos_ += 4;
      return true;
    }
    case WireType::kLengthDelimited: {
      const uint8_t* ignored_data;
      size_t ignored_size;
      return GetLengthDelimited(&ignored_data, &ignored_size);
    }
  }
  return false;
}

}  // namespace hyperprof::protowire
