#include "workloads/protowire/wire.h"

#include <cstring>

namespace hyperprof::protowire {

void PutVarint(WireBuffer& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

void PutSignedVarint(WireBuffer& out, int64_t value) {
  PutVarint(out, ZigZagEncode(value));
}

void PutFixed32(WireBuffer& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutFixed64(WireBuffer& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutTag(WireBuffer& out, uint32_t field_number, WireType type) {
  PutVarint(out, (static_cast<uint64_t>(field_number) << 3) |
                     static_cast<uint64_t>(type));
}

void PutLengthDelimited(WireBuffer& out, const uint8_t* data, size_t size) {
  PutVarint(out, size);
  out.insert(out.end(), data, data + size);
}

void PutLengthDelimited(WireBuffer& out, const std::string& data) {
  PutLengthDelimited(out, reinterpret_cast<const uint8_t*>(data.data()),
                     data.size());
}

size_t VarintSize(uint64_t value) {
  size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

bool WireReader::GetVarint(uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    uint8_t byte = data_[pos_++];
    if (shift >= 64) return false;  // overlong encoding
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated
}

bool WireReader::GetSignedVarint(int64_t* value) {
  uint64_t raw;
  if (!GetVarint(&raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

bool WireReader::GetFixed32(uint32_t* value) {
  if (pos_ + 4 > size_) return false;
  uint32_t v = 0;
  std::memcpy(&v, data_ + pos_, 4);  // little-endian host assumed
  pos_ += 4;
  *value = v;
  return true;
}

bool WireReader::GetFixed64(uint64_t* value) {
  if (pos_ + 8 > size_) return false;
  uint64_t v = 0;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  *value = v;
  return true;
}

bool WireReader::GetTag(uint32_t* field_number, WireType* type) {
  uint64_t raw;
  if (!GetVarint(&raw)) return false;
  uint64_t number = raw >> 3;
  uint64_t wire = raw & 0x7;
  if (number == 0 || number > 0x1fffffff) return false;
  if (wire != 0 && wire != 1 && wire != 2 && wire != 5) return false;
  *field_number = static_cast<uint32_t>(number);
  *type = static_cast<WireType>(wire);
  return true;
}

bool WireReader::GetLengthDelimited(const uint8_t** data, size_t* size) {
  uint64_t length;
  if (!GetVarint(&length)) return false;
  if (length > size_ - pos_) return false;
  *data = data_ + pos_;
  *size = static_cast<size_t>(length);
  pos_ += static_cast<size_t>(length);
  return true;
}

bool WireReader::SkipField(WireType type) {
  switch (type) {
    case WireType::kVarint: {
      uint64_t ignored;
      return GetVarint(&ignored);
    }
    case WireType::kFixed64: {
      if (pos_ + 8 > size_) return false;
      pos_ += 8;
      return true;
    }
    case WireType::kFixed32: {
      if (pos_ + 4 > size_) return false;
      pos_ += 4;
      return true;
    }
    case WireType::kLengthDelimited: {
      const uint8_t* ignored_data;
      size_t ignored_size;
      return GetLengthDelimited(&ignored_data, &ignored_size);
    }
  }
  return false;
}

}  // namespace hyperprof::protowire
