#ifndef HYPERPROF_WORKLOADS_PROTOWIRE_WIRE_H_
#define HYPERPROF_WORKLOADS_PROTOWIRE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hyperprof::protowire {

/**
 * Protocol-buffers wire types (the physical encoding of a field).
 *
 * This module implements the protobuf wire format from scratch — varints,
 * zigzag, tags, length-delimited payloads — because (de)serialization is
 * one of the dominant datacenter taxes the paper characterizes, and the
 * Table 8 validation chains real serialization into real hashing.
 */
enum class WireType : uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

/** Append-only output buffer for wire encoding. */
using WireBuffer = std::vector<uint8_t>;

/** Appends a base-128 varint. */
void PutVarint(WireBuffer& out, uint64_t value);

/** Appends a zigzag-encoded signed varint. */
void PutSignedVarint(WireBuffer& out, int64_t value);

/** Appends a little-endian fixed 32-bit value. */
void PutFixed32(WireBuffer& out, uint32_t value);

/** Appends a little-endian fixed 64-bit value. */
void PutFixed64(WireBuffer& out, uint64_t value);

/** Appends a field tag (field number + wire type). */
void PutTag(WireBuffer& out, uint32_t field_number, WireType type);

/** Appends a length-prefixed byte string. */
void PutLengthDelimited(WireBuffer& out, const uint8_t* data, size_t size);
void PutLengthDelimited(WireBuffer& out, const std::string& data);

/** Number of bytes PutVarint would write for `value`. */
size_t VarintSize(uint64_t value);

/** Zigzag transforms between signed and unsigned space. */
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

/**
 * Sequential wire-format reader with bounds checking.
 *
 * All getters return false on malformed or truncated input instead of
 * reading out of bounds; decode failure is a data error, not a crash.
 */
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit WireReader(const WireBuffer& buffer)
      : WireReader(buffer.data(), buffer.size()) {}

  bool AtEnd() const { return pos_ >= size_; }
  size_t position() const { return pos_; }

  bool GetVarint(uint64_t* value);
  bool GetSignedVarint(int64_t* value);
  bool GetFixed32(uint32_t* value);
  bool GetFixed64(uint64_t* value);
  bool GetTag(uint32_t* field_number, WireType* type);

  /** Reads a length prefix then exposes that many bytes. */
  bool GetLengthDelimited(const uint8_t** data, size_t* size);

  /** Skips a field's payload given its wire type. */
  bool SkipField(WireType type);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace hyperprof::protowire

#endif  // HYPERPROF_WORKLOADS_PROTOWIRE_WIRE_H_
