#include "workloads/query_plan.h"

#include <cassert>

#include "common/strings.h"

namespace hyperprof::relational {

namespace {

const char* PredicateName(Predicate pred) {
  switch (pred) {
    case Predicate::kLess: return "<";
    case Predicate::kLessEq: return "<=";
    case Predicate::kEq: return "==";
    case Predicate::kNotEq: return "!=";
    case Predicate::kGreaterEq: return ">=";
    case Predicate::kGreater: return ">";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "sum";
    case AggOp::kCount: return "count";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
  }
  return "?";
}

size_t RequireColumn(const Table& table, const std::string& name) {
  int index = table.FindColumn(name);
  assert(index >= 0 && "unknown column in plan");
  return static_cast<size_t>(index);
}

class TableSourceNode : public PlanNode {
 public:
  TableSourceNode(const Table* table, std::string name)
      : table_(table), name_(std::move(name)) {
    assert(table != nullptr);
  }
  Table Execute() const override {
    std::vector<size_t> all(table_->num_columns());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return Project(*table_, all);
  }
  std::string Describe() const override {
    return StrFormat("TableSource(%s, %zu rows)", name_.c_str(),
                     table_->num_rows());
  }

 private:
  const Table* table_;
  std::string name_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, std::string column, Predicate pred,
             int64_t literal)
      : column_(std::move(column)), pred_(pred), literal_(literal) {
    children_.push_back(std::move(child));
  }
  Table Execute() const override {
    Table input = children_[0]->Execute();
    size_t column_index = RequireColumn(input, column_);
    auto selection =
        relational::Filter(input.column(column_index), pred_, literal_);
    std::vector<size_t> all(input.num_columns());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return Materialize(input, selection, all);
  }
  std::string Describe() const override {
    return StrFormat("Filter(%s %s %lld)", column_.c_str(),
                     PredicateName(pred_), static_cast<long long>(literal_));
  }

 private:
  std::string column_;
  Predicate pred_;
  int64_t literal_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    children_.push_back(std::move(child));
  }
  Table Execute() const override {
    Table input = children_[0]->Execute();
    std::vector<size_t> indices;
    indices.reserve(columns_.size());
    for (const auto& name : columns_) {
      indices.push_back(RequireColumn(input, name));
    }
    return Project(input, indices);
  }
  std::string Describe() const override {
    return "Project(" + StrJoin(columns_, ", ") + ")";
  }

 private:
  std::vector<std::string> columns_;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::string group_column,
                std::string value_column, AggOp op, bool sorted)
      : group_column_(std::move(group_column)),
        value_column_(std::move(value_column)),
        op_(op),
        sorted_(sorted) {
    children_.push_back(std::move(child));
  }
  Table Execute() const override {
    Table input = children_[0]->Execute();
    size_t group_index = RequireColumn(input, group_column_);
    size_t value_index = RequireColumn(input, value_column_);
    return sorted_ ? SortAggregate(input, group_index, value_index, op_)
                   : HashAggregate(input, group_index, value_index, op_);
  }
  std::string Describe() const override {
    return StrFormat("%sAggregate(%s(%s) by %s)", sorted_ ? "Sort" : "Hash",
                     AggOpName(op_), value_column_.c_str(),
                     group_column_.c_str());
  }

 private:
  std::string group_column_;
  std::string value_column_;
  AggOp op_;
  bool sorted_;
};

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, std::string left_key, PlanPtr right,
               std::string right_key)
      : left_key_(std::move(left_key)), right_key_(std::move(right_key)) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }
  Table Execute() const override {
    Table left = children_[0]->Execute();
    Table right = children_[1]->Execute();
    return HashJoin(left, RequireColumn(left, left_key_), right,
                    RequireColumn(right, right_key_));
  }
  std::string Describe() const override {
    return StrFormat("HashJoin(%s == %s)", left_key_.c_str(),
                     right_key_.c_str());
  }

 private:
  std::string left_key_;
  std::string right_key_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::string column) : column_(std::move(column)) {
    children_.push_back(std::move(child));
  }
  Table Execute() const override {
    Table input = children_[0]->Execute();
    SortByColumn(input, RequireColumn(input, column_));
    return input;
  }
  std::string Describe() const override {
    return StrFormat("Sort(%s)", column_.c_str());
  }

 private:
  std::string column_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t limit) : limit_(limit) {
    children_.push_back(std::move(child));
  }
  Table Execute() const override {
    Table input = children_[0]->Execute();
    size_t keep = std::min(limit_, input.num_rows());
    std::vector<uint32_t> selection(keep);
    for (size_t i = 0; i < keep; ++i) {
      selection[i] = static_cast<uint32_t>(i);
    }
    std::vector<size_t> all(input.num_columns());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return Materialize(input, selection, all);
  }
  std::string Describe() const override {
    return StrFormat("Limit(%zu)", limit_);
  }

 private:
  size_t limit_;
};

}  // namespace

std::string PlanNode::DescribeTree(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe() + "\n";
  for (const auto& child : children_) {
    out += child->DescribeTree(indent + 1);
  }
  return out;
}

PlanPtr MakeTableSource(const Table* table, std::string name) {
  return std::make_unique<TableSourceNode>(table, std::move(name));
}

PlanPtr MakeFilter(PlanPtr child, std::string column, Predicate pred,
                   int64_t literal) {
  return std::make_unique<FilterNode>(std::move(child), std::move(column),
                                      pred, literal);
}

PlanPtr MakeProject(PlanPtr child, std::vector<std::string> columns) {
  return std::make_unique<ProjectNode>(std::move(child),
                                       std::move(columns));
}

PlanPtr MakeHashAggregate(PlanPtr child, std::string group_column,
                          std::string value_column, AggOp op) {
  return std::make_unique<AggregateNode>(std::move(child),
                                         std::move(group_column),
                                         std::move(value_column), op,
                                         /*sorted=*/false);
}

PlanPtr MakeSortAggregate(PlanPtr child, std::string group_column,
                          std::string value_column, AggOp op) {
  return std::make_unique<AggregateNode>(std::move(child),
                                         std::move(group_column),
                                         std::move(value_column), op,
                                         /*sorted=*/true);
}

PlanPtr MakeHashJoin(PlanPtr left, std::string left_key, PlanPtr right,
                     std::string right_key) {
  return std::make_unique<HashJoinNode>(std::move(left),
                                        std::move(left_key),
                                        std::move(right),
                                        std::move(right_key));
}

PlanPtr MakeSort(PlanPtr child, std::string column) {
  return std::make_unique<SortNode>(std::move(child), std::move(column));
}

PlanPtr MakeLimit(PlanPtr child, size_t limit) {
  return std::make_unique<LimitNode>(std::move(child), limit);
}

}  // namespace hyperprof::relational
