#ifndef HYPERPROF_WORKLOADS_QUERY_PLAN_H_
#define HYPERPROF_WORKLOADS_QUERY_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/relational.h"

namespace hyperprof::relational {

/**
 * A small composable query executor over the columnar kernels — the
 * "Query" / analytics core-compute code path in executable form. Plans
 * are trees of operators; Execute() materializes bottom-up (simple bulk
 * execution, which is how the vectorized engines the paper profiles
 * behave at block granularity).
 *
 * Operators: TableSource, Filter, Project, HashAggregate, SortAggregate,
 * HashJoin, Sort, Limit.
 */
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /** Executes the subtree and returns the result table. */
  virtual Table Execute() const = 0;

  /** One-line description, e.g. "Filter(key < 10)". */
  virtual std::string Describe() const = 0;

  /** Renders the operator tree, one node per line, indented. */
  std::string DescribeTree(int indent = 0) const;

  const std::vector<std::unique_ptr<PlanNode>>& children() const {
    return children_;
  }

 protected:
  std::vector<std::unique_ptr<PlanNode>> children_;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/** Leaf: scans an in-memory table (by reference; caller keeps it alive). */
PlanPtr MakeTableSource(const Table* table, std::string name = "table");

/** Filters rows of the child by `column <pred> literal`. */
PlanPtr MakeFilter(PlanPtr child, std::string column, Predicate pred,
                   int64_t literal);

/** Keeps only the named columns, in order. */
PlanPtr MakeProject(PlanPtr child, std::vector<std::string> columns);

/** Groups by `group_column`, aggregating `value_column` with `op`. */
PlanPtr MakeHashAggregate(PlanPtr child, std::string group_column,
                          std::string value_column, AggOp op);

/** Sort-based variant of the aggregate (key-ordered output). */
PlanPtr MakeSortAggregate(PlanPtr child, std::string group_column,
                          std::string value_column, AggOp op);

/** Inner hash join of two children on the named key columns. */
PlanPtr MakeHashJoin(PlanPtr left, std::string left_key, PlanPtr right,
                     std::string right_key);

/** Sorts the child's rows by the named column. */
PlanPtr MakeSort(PlanPtr child, std::string column);

/** Keeps the first `limit` rows. */
PlanPtr MakeLimit(PlanPtr child, size_t limit);

}  // namespace hyperprof::relational

#endif  // HYPERPROF_WORKLOADS_QUERY_PLAN_H_
