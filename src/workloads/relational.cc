#include "workloads/relational.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

namespace hyperprof::relational {

Table::Table(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (const auto& col : columns_) {
    assert(col.values.size() == columns_[0].values.size());
    (void)col;
  }
}

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::AddColumn(Column column) {
  assert(columns_.empty() ||
         column.values.size() == columns_[0].values.size());
  columns_.push_back(std::move(column));
}

std::vector<uint32_t> Filter(const Column& column, Predicate pred,
                             int64_t literal) {
  std::vector<uint32_t> selection;
  selection.reserve(column.values.size() / 4);
  const auto& v = column.values;
  auto scan = [&](auto keep) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (keep(v[i])) selection.push_back(static_cast<uint32_t>(i));
    }
  };
  switch (pred) {
    case Predicate::kLess:
      scan([literal](int64_t x) { return x < literal; });
      break;
    case Predicate::kLessEq:
      scan([literal](int64_t x) { return x <= literal; });
      break;
    case Predicate::kEq:
      scan([literal](int64_t x) { return x == literal; });
      break;
    case Predicate::kNotEq:
      scan([literal](int64_t x) { return x != literal; });
      break;
    case Predicate::kGreaterEq:
      scan([literal](int64_t x) { return x >= literal; });
      break;
    case Predicate::kGreater:
      scan([literal](int64_t x) { return x > literal; });
      break;
  }
  return selection;
}

Table Materialize(const Table& table, const std::vector<uint32_t>& selection,
                  const std::vector<size_t>& column_indices) {
  std::vector<Column> out;
  out.reserve(column_indices.size());
  for (size_t ci : column_indices) {
    const Column& src = table.column(ci);
    Column dst;
    dst.name = src.name;
    dst.values.reserve(selection.size());
    for (uint32_t row : selection) {
      dst.values.push_back(src.values[row]);
    }
    out.push_back(std::move(dst));
  }
  return Table(std::move(out));
}

Table Project(const Table& table,
              const std::vector<size_t>& column_indices) {
  std::vector<Column> out;
  out.reserve(column_indices.size());
  for (size_t ci : column_indices) {
    out.push_back(table.column(ci));
  }
  return Table(std::move(out));
}

namespace {

struct AggState {
  int64_t accum;
  bool initialized;
};

int64_t InitialAccum(AggOp op, int64_t first) {
  switch (op) {
    case AggOp::kSum: return first;
    case AggOp::kCount: return 1;
    case AggOp::kMin: return first;
    case AggOp::kMax: return first;
  }
  return 0;
}

void Accumulate(AggOp op, int64_t value, int64_t* accum) {
  switch (op) {
    case AggOp::kSum: *accum += value; break;
    case AggOp::kCount: *accum += 1; break;
    case AggOp::kMin: *accum = std::min(*accum, value); break;
    case AggOp::kMax: *accum = std::max(*accum, value); break;
  }
}

}  // namespace

Table HashAggregate(const Table& table, size_t group_column,
                    size_t value_column, AggOp op) {
  const auto& keys = table.column(group_column).values;
  const auto& values = table.column(value_column).values;
  std::unordered_map<int64_t, size_t> index;
  index.reserve(keys.size() / 4 + 1);
  Column key_out{"key", {}};
  Column agg_out{"agg", {}};
  for (size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = index.try_emplace(keys[i], key_out.values.size());
    if (inserted) {
      key_out.values.push_back(keys[i]);
      agg_out.values.push_back(InitialAccum(op, values[i]));
    } else {
      Accumulate(op, values[i], &agg_out.values[it->second]);
    }
  }
  std::vector<Column> out;
  out.push_back(std::move(key_out));
  out.push_back(std::move(agg_out));
  return Table(std::move(out));
}

Table SortAggregate(const Table& table, size_t group_column,
                    size_t value_column, AggOp op) {
  const auto& keys = table.column(group_column).values;
  const auto& values = table.column(value_column).values;
  std::vector<uint32_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });
  Column key_out{"key", {}};
  Column agg_out{"agg", {}};
  for (uint32_t row : order) {
    if (!key_out.values.empty() && key_out.values.back() == keys[row]) {
      Accumulate(op, values[row], &agg_out.values.back());
    } else {
      key_out.values.push_back(keys[row]);
      agg_out.values.push_back(InitialAccum(op, values[row]));
    }
  }
  std::vector<Column> out;
  out.push_back(std::move(key_out));
  out.push_back(std::move(agg_out));
  return Table(std::move(out));
}

Table HashJoin(const Table& left, size_t left_key, const Table& right,
               size_t right_key) {
  const auto& lkeys = left.column(left_key).values;
  const auto& rkeys = right.column(right_key).values;
  // Build on the smaller side; probe with the larger, preserving probe
  // order in the output.
  const bool build_left = lkeys.size() <= rkeys.size();
  const auto& build_keys = build_left ? lkeys : rkeys;
  std::unordered_multimap<int64_t, uint32_t> hash_table;
  hash_table.reserve(build_keys.size());
  for (size_t i = 0; i < build_keys.size(); ++i) {
    hash_table.emplace(build_keys[i], static_cast<uint32_t>(i));
  }
  const auto& probe_keys = build_left ? rkeys : lkeys;
  std::vector<uint32_t> left_rows, right_rows;
  for (size_t i = 0; i < probe_keys.size(); ++i) {
    auto [lo, hi] = hash_table.equal_range(probe_keys[i]);
    for (auto it = lo; it != hi; ++it) {
      uint32_t build_row = it->second;
      uint32_t probe_row = static_cast<uint32_t>(i);
      left_rows.push_back(build_left ? build_row : probe_row);
      right_rows.push_back(build_left ? probe_row : build_row);
    }
  }
  std::vector<Column> out;
  out.reserve(left.num_columns() + right.num_columns());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    const Column& src = left.column(c);
    Column dst{"l_" + src.name, {}};
    dst.values.reserve(left_rows.size());
    for (uint32_t row : left_rows) dst.values.push_back(src.values[row]);
    out.push_back(std::move(dst));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    const Column& src = right.column(c);
    Column dst{"r_" + src.name, {}};
    dst.values.reserve(right_rows.size());
    for (uint32_t row : right_rows) dst.values.push_back(src.values[row]);
    out.push_back(std::move(dst));
  }
  return Table(std::move(out));
}

void SortByColumn(Table& table, size_t key_column) {
  const auto& keys = table.column(key_column).values;
  std::vector<uint32_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });
  for (size_t c = 0; c < table.num_columns(); ++c) {
    auto& values = table.column(c).values;
    std::vector<int64_t> sorted(values.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted[i] = values[order[i]];
    }
    values = std::move(sorted);
  }
}

Table GenerateTable(size_t num_rows, size_t num_value_columns,
                    size_t key_cardinality, Rng& rng) {
  assert(key_cardinality > 0);
  std::vector<Column> columns;
  Column key{"key", {}};
  key.values.reserve(num_rows);
  ZipfSampler zipf(key_cardinality, 0.8);
  for (size_t i = 0; i < num_rows; ++i) {
    key.values.push_back(static_cast<int64_t>(zipf.Sample(rng)));
  }
  columns.push_back(std::move(key));
  for (size_t c = 0; c < num_value_columns; ++c) {
    Column col{"v" + std::to_string(c), {}};
    col.values.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      col.values.push_back(static_cast<int64_t>(rng.NextBounded(1000000)));
    }
    columns.push_back(std::move(col));
  }
  return Table(std::move(columns));
}

}  // namespace hyperprof::relational
