#ifndef HYPERPROF_WORKLOADS_RELATIONAL_H_
#define HYPERPROF_WORKLOADS_RELATIONAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace hyperprof::relational {

/**
 * Columnar relational kernels — the "core compute" operations of the
 * analytics platform in the paper's Table 5: filter/scan, aggregation
 * (hash and sort), join, project, sort, and materialize.
 *
 * Columns are int64 vectors; a Table is a set of equally-long named
 * columns. The kernels are real (they move and compute on actual data) so
 * the per-operation cost models used by the simulated BigQuery engine are
 * grounded in measurable code.
 */
struct Column {
  std::string name;
  std::vector<int64_t> values;
};

/** A named collection of equal-length columns. */
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<Column> columns);

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].values.size();
  }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /** Index of the column with the given name; -1 if absent. */
  int FindColumn(const std::string& name) const;

  void AddColumn(Column column);

 private:
  std::vector<Column> columns_;
};

/** Comparison predicates for Filter. */
enum class Predicate { kLess, kLessEq, kEq, kNotEq, kGreaterEq, kGreater };

/** Aggregation functions. */
enum class AggOp { kSum, kCount, kMin, kMax };

/**
 * Scans a column, returning indices of rows satisfying
 * `value <pred> literal` (a selection vector).
 */
std::vector<uint32_t> Filter(const Column& column, Predicate pred,
                             int64_t literal);

/** Gathers the selected rows of the given columns into a new table. */
Table Materialize(const Table& table, const std::vector<uint32_t>& selection,
                  const std::vector<size_t>& column_indices);

/** Copies out a subset of columns without row filtering. */
Table Project(const Table& table, const std::vector<size_t>& column_indices);

/**
 * Groups by `group_column`, applying `op` over `value_column`.
 * Output columns: "key" and "agg", ordered by first occurrence.
 */
Table HashAggregate(const Table& table, size_t group_column,
                    size_t value_column, AggOp op);

/**
 * Sort-based aggregation: same contract as HashAggregate with key-ordered
 * output. The paper distinguishes hash vs sort aggregation costs; having
 * both allows the ablation benches to compare them.
 */
Table SortAggregate(const Table& table, size_t group_column,
                    size_t value_column, AggOp op);

/**
 * Inner hash join on integer keys. Output columns are left columns then
 * right columns (key columns included once each).
 */
Table HashJoin(const Table& left, size_t left_key, const Table& right,
               size_t right_key);

/** Stable in-place sort of all columns by the given key column. */
void SortByColumn(Table& table, size_t key_column);

/**
 * Generates a table of `num_rows` rows: column 0 is a Zipf-ish group key
 * with `key_cardinality` distinct values, remaining columns are uniform
 * values. Used by the analytics workload generator and the kernel
 * microbenchmarks.
 */
Table GenerateTable(size_t num_rows, size_t num_value_columns,
                    size_t key_cardinality, Rng& rng);

}  // namespace hyperprof::relational

#endif  // HYPERPROF_WORKLOADS_RELATIONAL_H_
