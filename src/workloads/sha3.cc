#include "workloads/sha3.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hyperprof::workloads {

namespace {

constexpr int kRounds = 24;

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

// Rotation offsets for the rho step, indexed [x][y].
constexpr int kRho[5][5] = {
    {0, 36, 3, 41, 18},
    {1, 44, 10, 45, 2},
    {62, 6, 43, 15, 61},
    {28, 55, 25, 21, 56},
    {27, 20, 39, 8, 14},
};

uint64_t Rotl64(uint64_t v, int k) {
  return k == 0 ? v : (v << k) | (v >> (64 - k));
}

}  // namespace

Sha3_256::Sha3_256() : buffer_fill_(0), finished_(false) {
  state_.fill(0);
  buffer_.fill(0);
}

void Sha3_256::KeccakF() {
  auto& a = state_;  // a[x + 5*y]
  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    uint64_t d[5];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ Rotl64(c[(x + 1) % 5], 1);
    }
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] ^= d[x];
      }
    }
    // Rho + Pi.
    uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = Rotl64(a[x + 5 * y], kRho[x][y]);
      }
    }
    // Chi.
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota.
    a[0] ^= kRoundConstants[round];
  }
}

void Sha3_256::Absorb() {
  for (size_t i = 0; i < kRateBytes / 8; ++i) {
    uint64_t lane;
    std::memcpy(&lane, buffer_.data() + 8 * i, 8);
    state_[i] ^= lane;  // little-endian host assumed
  }
  KeccakF();
  buffer_fill_ = 0;
}

void Sha3_256::Update(const uint8_t* data, size_t size) {
  assert(!finished_);
  while (size > 0) {
    size_t take = std::min(size, kRateBytes - buffer_fill_);
    std::memcpy(buffer_.data() + buffer_fill_, data, take);
    buffer_fill_ += take;
    data += take;
    size -= take;
    if (buffer_fill_ == kRateBytes) Absorb();
  }
}

std::array<uint8_t, Sha3_256::kDigestBytes> Sha3_256::Finish() {
  assert(!finished_);
  finished_ = true;
  // Pad10*1 with SHA-3 domain bits: 0x06 ... 0x80.
  std::memset(buffer_.data() + buffer_fill_, 0, kRateBytes - buffer_fill_);
  buffer_[buffer_fill_] = 0x06;
  buffer_[kRateBytes - 1] |= 0x80;
  Absorb();
  std::array<uint8_t, kDigestBytes> digest;
  std::memcpy(digest.data(), state_.data(), kDigestBytes);
  return digest;
}

std::array<uint8_t, Sha3_256::kDigestBytes> Sha3_256::Hash(
    const uint8_t* data, size_t size) {
  Sha3_256 hasher;
  hasher.Update(data, size);
  return hasher.Finish();
}

std::string DigestToHex(
    const std::array<uint8_t, Sha3_256::kDigestBytes>& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(d.size() * 2);
  for (uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace hyperprof::workloads
