#include "workloads/sha3.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hyperprof::workloads {

namespace {

constexpr int kRounds = 24;

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

uint64_t Rotl64(uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Sha3_256::Sha3_256() : buffer_fill_(0), finished_(false) {
  state_.fill(0);
  buffer_.fill(0);
}

// Keccak-f[1600] with the 25 lanes held in locals (aXY = lane x=X, y=Y),
// the x/y loops fully unrolled, and the rho/pi permutation flattened into
// 25 constant-rotation assignments. The modular index arithmetic and the
// in-memory b[25] scratch of the textbook formulation are gone; each round
// is straight-line code over registers.
void Sha3_256::KeccakF() {
  uint64_t a00 = state_[0], a10 = state_[1], a20 = state_[2],
           a30 = state_[3], a40 = state_[4];
  uint64_t a01 = state_[5], a11 = state_[6], a21 = state_[7],
           a31 = state_[8], a41 = state_[9];
  uint64_t a02 = state_[10], a12 = state_[11], a22 = state_[12],
           a32 = state_[13], a42 = state_[14];
  uint64_t a03 = state_[15], a13 = state_[16], a23 = state_[17],
           a33 = state_[18], a43 = state_[19];
  uint64_t a04 = state_[20], a14 = state_[21], a24 = state_[22],
           a34 = state_[23], a44 = state_[24];
  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    uint64_t c0 = a00 ^ a01 ^ a02 ^ a03 ^ a04;
    uint64_t c1 = a10 ^ a11 ^ a12 ^ a13 ^ a14;
    uint64_t c2 = a20 ^ a21 ^ a22 ^ a23 ^ a24;
    uint64_t c3 = a30 ^ a31 ^ a32 ^ a33 ^ a34;
    uint64_t c4 = a40 ^ a41 ^ a42 ^ a43 ^ a44;
    uint64_t d0 = c4 ^ Rotl64(c1, 1);
    uint64_t d1 = c0 ^ Rotl64(c2, 1);
    uint64_t d2 = c1 ^ Rotl64(c3, 1);
    uint64_t d3 = c2 ^ Rotl64(c4, 1);
    uint64_t d4 = c3 ^ Rotl64(c0, 1);
    a00 ^= d0; a10 ^= d1; a20 ^= d2; a30 ^= d3; a40 ^= d4;
    a01 ^= d0; a11 ^= d1; a21 ^= d2; a31 ^= d3; a41 ^= d4;
    a02 ^= d0; a12 ^= d1; a22 ^= d2; a32 ^= d3; a42 ^= d4;
    a03 ^= d0; a13 ^= d1; a23 ^= d2; a33 ^= d3; a43 ^= d4;
    a04 ^= d0; a14 ^= d1; a24 ^= d2; a34 ^= d3; a44 ^= d4;
    // Rho + Pi: b[y][(2x+3y)%5] = rotl(a[x][y], rho[x][y]).
    uint64_t b00 = a00;
    uint64_t b13 = Rotl64(a01, 36);
    uint64_t b21 = Rotl64(a02, 3);
    uint64_t b34 = Rotl64(a03, 41);
    uint64_t b42 = Rotl64(a04, 18);
    uint64_t b02 = Rotl64(a10, 1);
    uint64_t b10 = Rotl64(a11, 44);
    uint64_t b23 = Rotl64(a12, 10);
    uint64_t b31 = Rotl64(a13, 45);
    uint64_t b44 = Rotl64(a14, 2);
    uint64_t b04 = Rotl64(a20, 62);
    uint64_t b12 = Rotl64(a21, 6);
    uint64_t b20 = Rotl64(a22, 43);
    uint64_t b33 = Rotl64(a23, 15);
    uint64_t b41 = Rotl64(a24, 61);
    uint64_t b01 = Rotl64(a30, 28);
    uint64_t b14 = Rotl64(a31, 55);
    uint64_t b22 = Rotl64(a32, 25);
    uint64_t b30 = Rotl64(a33, 21);
    uint64_t b43 = Rotl64(a34, 56);
    uint64_t b03 = Rotl64(a40, 27);
    uint64_t b11 = Rotl64(a41, 20);
    uint64_t b24 = Rotl64(a42, 39);
    uint64_t b32 = Rotl64(a43, 8);
    uint64_t b40 = Rotl64(a44, 14);
    // Chi.
    a00 = b00 ^ (~b10 & b20); a10 = b10 ^ (~b20 & b30);
    a20 = b20 ^ (~b30 & b40); a30 = b30 ^ (~b40 & b00);
    a40 = b40 ^ (~b00 & b10);
    a01 = b01 ^ (~b11 & b21); a11 = b11 ^ (~b21 & b31);
    a21 = b21 ^ (~b31 & b41); a31 = b31 ^ (~b41 & b01);
    a41 = b41 ^ (~b01 & b11);
    a02 = b02 ^ (~b12 & b22); a12 = b12 ^ (~b22 & b32);
    a22 = b22 ^ (~b32 & b42); a32 = b32 ^ (~b42 & b02);
    a42 = b42 ^ (~b02 & b12);
    a03 = b03 ^ (~b13 & b23); a13 = b13 ^ (~b23 & b33);
    a23 = b23 ^ (~b33 & b43); a33 = b33 ^ (~b43 & b03);
    a43 = b43 ^ (~b03 & b13);
    a04 = b04 ^ (~b14 & b24); a14 = b14 ^ (~b24 & b34);
    a24 = b24 ^ (~b34 & b44); a34 = b34 ^ (~b44 & b04);
    a44 = b44 ^ (~b04 & b14);
    // Iota.
    a00 ^= kRoundConstants[round];
  }
  state_[0] = a00; state_[1] = a10; state_[2] = a20;
  state_[3] = a30; state_[4] = a40;
  state_[5] = a01; state_[6] = a11; state_[7] = a21;
  state_[8] = a31; state_[9] = a41;
  state_[10] = a02; state_[11] = a12; state_[12] = a22;
  state_[13] = a32; state_[14] = a42;
  state_[15] = a03; state_[16] = a13; state_[17] = a23;
  state_[18] = a33; state_[19] = a43;
  state_[20] = a04; state_[21] = a14; state_[22] = a24;
  state_[23] = a34; state_[24] = a44;
}

void Sha3_256::AbsorbBlock(const uint8_t* block) {
  for (size_t i = 0; i < kRateBytes / 8; ++i) {
    uint64_t lane;
    std::memcpy(&lane, block + 8 * i, 8);
    state_[i] ^= lane;  // little-endian host assumed
  }
  KeccakF();
}

void Sha3_256::Absorb() {
  AbsorbBlock(buffer_.data());
  buffer_fill_ = 0;
}

void Sha3_256::Update(const uint8_t* data, size_t size) {
  assert(!finished_);
  // Top up a partially-filled buffer first.
  if (buffer_fill_ > 0) {
    size_t take = std::min(size, kRateBytes - buffer_fill_);
    std::memcpy(buffer_.data() + buffer_fill_, data, take);
    buffer_fill_ += take;
    data += take;
    size -= take;
    if (buffer_fill_ == kRateBytes) Absorb();
  }
  // Full rate blocks are absorbed straight from the input, skipping the
  // staging copy.
  while (size >= kRateBytes) {
    AbsorbBlock(data);
    data += kRateBytes;
    size -= kRateBytes;
  }
  if (size > 0) {
    std::memcpy(buffer_.data(), data, size);
    buffer_fill_ = size;
  }
}

std::array<uint8_t, Sha3_256::kDigestBytes> Sha3_256::Finish() {
  assert(!finished_);
  finished_ = true;
  // Pad10*1 with SHA-3 domain bits: 0x06 ... 0x80.
  std::memset(buffer_.data() + buffer_fill_, 0, kRateBytes - buffer_fill_);
  buffer_[buffer_fill_] = 0x06;
  buffer_[kRateBytes - 1] |= 0x80;
  Absorb();
  std::array<uint8_t, kDigestBytes> digest;
  std::memcpy(digest.data(), state_.data(), kDigestBytes);
  return digest;
}

std::array<uint8_t, Sha3_256::kDigestBytes> Sha3_256::Hash(
    const uint8_t* data, size_t size) {
  Sha3_256 hasher;
  hasher.Update(data, size);
  return hasher.Finish();
}

std::string DigestToHex(
    const std::array<uint8_t, Sha3_256::kDigestBytes>& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(d.size() * 2);
  for (uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace hyperprof::workloads
