#ifndef HYPERPROF_WORKLOADS_SHA3_H_
#define HYPERPROF_WORKLOADS_SHA3_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hyperprof::workloads {

/**
 * SHA3-256 (FIPS 202) implemented from scratch on Keccak-f[1600].
 *
 * Cryptographic hashing is one of the paper's datacenter taxes; the Table 8
 * validation chains protobuf serialization into exactly this hash. The
 * implementation is a straightforward sponge: rate 1088 bits, capacity 512,
 * domain padding 0x06.
 */
class Sha3_256 {
 public:
  static constexpr size_t kDigestBytes = 32;
  static constexpr size_t kRateBytes = 136;  // (1600 - 2*256) / 8

  Sha3_256();

  /** Absorbs more input. May be called repeatedly. */
  void Update(const uint8_t* data, size_t size);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }

  /**
   * Pads, squeezes, and returns the 32-byte digest. The object must not be
   * reused after Finish (construct a fresh one per message).
   */
  std::array<uint8_t, kDigestBytes> Finish();

  /** One-shot convenience. */
  static std::array<uint8_t, kDigestBytes> Hash(const uint8_t* data,
                                                size_t size);
  static std::array<uint8_t, kDigestBytes> Hash(
      const std::vector<uint8_t>& data) {
    return Hash(data.data(), data.size());
  }

 private:
  void Absorb();
  void AbsorbBlock(const uint8_t* block);
  void KeccakF();

  std::array<uint64_t, 25> state_;
  std::array<uint8_t, kRateBytes> buffer_;
  size_t buffer_fill_;
  bool finished_;
};

/** Hex rendering of a digest, for tests and logs. */
std::string DigestToHex(const std::array<uint8_t, Sha3_256::kDigestBytes>& d);

}  // namespace hyperprof::workloads

#endif  // HYPERPROF_WORKLOADS_SHA3_H_
