#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace hyperprof {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / 10.0, 5 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    int64_t value = rng.NextInt(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
  }
  // Degenerate range.
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double value = rng.NextGaussian();
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(23);
  const int n = 100001;
  std::vector<double> values(n);
  for (auto& value : values) value = rng.NextLogNormal(1.0, 0.5);
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  // Median of lognormal(mu, sigma) is e^mu.
  EXPECT_NEAR(values[n / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextBoundedPareto(1.2, 1.0, 1000.0);
    EXPECT_GE(value, 1.0);
    EXPECT_LE(value, 1000.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream should not track parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(37);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(heads / static_cast<double>(n), 0.3, 0.01);
}

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler sampler({1.0, 3.0});
  EXPECT_DOUBLE_EQ(sampler.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.Probability(1), 0.75);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatchWeights) {
  AliasSampler sampler({0.1, 0.2, 0.3, 0.4});
  Rng rng(41);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (int v = 0; v < 4; ++v) {
    double expected = sampler.Probability(v);
    EXPECT_NEAR(counts[v] / static_cast<double>(n), expected, 0.01);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0});
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(sampler.Sample(rng), 1u);
  }
}

TEST(AliasSamplerTest, AllZeroWeightsFallBackToUniform) {
  AliasSampler sampler({0.0, 0.0});
  Rng rng(47);
  int first = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample(rng) == 0) ++first;
  }
  EXPECT_NEAR(first / 10000.0, 0.5, 0.05);
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler({5.0});
  Rng rng(53);
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(ZipfSamplerTest, RankOneIsMostPopular) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(59);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSamplerTest, HeadMassMatchesTheory) {
  const size_t n = 1000;
  const double s = 0.9;
  ZipfSampler zipf(n, s);
  Rng rng(61);
  int head = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // Theoretical mass of the top 10 ranks.
  double num = 0, den = 0;
  for (size_t k = 1; k <= n; ++k) {
    double w = std::pow(static_cast<double>(k), -s);
    den += w;
    if (k <= 10) num += w;
  }
  EXPECT_NEAR(head / static_cast<double>(draws), num / den, 0.01);
}

}  // namespace
}  // namespace hyperprof
