#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace hyperprof {
namespace {

TEST(SimTimeTest, UnitConstructors) {
  EXPECT_EQ(SimTime::Micros(1).nanos(), 1000);
  EXPECT_EQ(SimTime::Millis(1).nanos(), 1000000);
  EXPECT_EQ(SimTime::Seconds(1).nanos(), 1000000000);
}

TEST(SimTimeTest, FromSecondsRounds) {
  EXPECT_EQ(SimTime::FromSeconds(1.5e-9).nanos(), 2);
  EXPECT_EQ(SimTime::FromSeconds(1.4e-9).nanos(), 1);
  EXPECT_EQ(SimTime::FromSeconds(0.001).nanos(), 1000000);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Micros(3);
  SimTime b = SimTime::Micros(2);
  EXPECT_EQ((a + b).nanos(), 5000);
  EXPECT_EQ((a - b).nanos(), 1000);
  EXPECT_EQ((a * 4).nanos(), 12000);
  a += b;
  EXPECT_EQ(a.nanos(), 5000);
  a -= b;
  EXPECT_EQ(a.nanos(), 3000);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::Nanos(1), SimTime::Nanos(2));
  EXPECT_EQ(SimTime::Micros(1), SimTime::Nanos(1000));
  EXPECT_GT(SimTime::Seconds(1), SimTime::Millis(999));
}

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(SimTime::Millis(5).ToSeconds(), 0.005);
  EXPECT_DOUBLE_EQ(SimTime::Micros(7).ToMicros(), 7.0);
}

TEST(SimTimeTest, ToStringUsesHumanUnits) {
  EXPECT_EQ(SimTime::Micros(518).ToString(), "518.0 us");
  EXPECT_EQ(SimTime::Zero().ToString(), "0 s");
}

}  // namespace
}  // namespace hyperprof
