#include "common/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperprof {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.sum(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStat all, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextGaussian() * 3 + 1;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat stat, empty;
  stat.Add(3.0);
  stat.Merge(empty);
  EXPECT_EQ(stat.count(), 1u);
  empty.Merge(stat);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(LogHistogramTest, CountAndMean) {
  LogHistogram hist;
  hist.Add(1e-3);
  hist.Add(3e-3);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.mean(), 2e-3);
}

TEST(LogHistogramTest, QuantilesOrdered) {
  LogHistogram hist;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) hist.Add(rng.NextExponential(1e-3));
  double p50 = hist.Quantile(0.5);
  double p90 = hist.Quantile(0.9);
  double p99 = hist.Quantile(0.99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  // Exponential(1ms): median = ln(2) ms, p90 = ln(10) ms.
  EXPECT_NEAR(p50, std::log(2.0) * 1e-3, 0.15e-3);
  EXPECT_NEAR(p90, std::log(10.0) * 1e-3, 0.4e-3);
}

TEST(LogHistogramTest, UnderflowCountsButClamps) {
  LogHistogram hist(1e-6);
  hist.Add(1e-9);  // below min bucket
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GT(hist.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, MergeAddsCounts) {
  LogHistogram a, b;
  a.Add(1e-3);
  b.Add(2e-3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.sum(), 3e-3);
}

// Regression: Merge used to check only bucket-vector size (and only via
// assert, compiled out under NDEBUG). These two geometries have identical
// bucket counts but disjoint value ranges; merging them must die in every
// build mode instead of silently corrupting quantiles.
TEST(LogHistogramDeathTest, MergeRejectsMismatchedGeometry) {
  LogHistogram nanos(1e-9, 20, 15);
  LogHistogram micros(1e-6, 20, 15);
  nanos.Add(1e-3);
  micros.Add(1e-3);
  EXPECT_DEATH(nanos.Merge(micros), "geometry mismatch");
}

TEST(LogHistogramDeathTest, MergeRejectsMismatchedBucketsPerDecade) {
  LogHistogram coarse(1e-9, 10, 30);  // same total bucket count as default
  LogHistogram fine;
  EXPECT_DEATH(fine.Merge(coarse), "geometry mismatch");
}

// Regression: Add(NaN/±inf) used to flow log10 output into a size_t cast
// (UB) and poison sum_. Non-finite samples now land in a dedicated bin and
// leave count/sum/quantiles untouched.
TEST(LogHistogramTest, NonFiniteSamplesAreIsolated) {
  LogHistogram hist;
  hist.Add(1e-3);
  hist.Add(std::numeric_limits<double>::quiet_NaN());
  hist.Add(std::numeric_limits<double>::infinity());
  hist.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.nonfinite(), 3u);
  EXPECT_DOUBLE_EQ(hist.mean(), 1e-3);
  EXPECT_TRUE(std::isfinite(hist.Quantile(0.5)));
  EXPECT_TRUE(std::isfinite(hist.Quantile(1.0)));

  LogHistogram other;
  other.Add(std::numeric_limits<double>::quiet_NaN());
  hist.Merge(other);
  EXPECT_EQ(hist.nonfinite(), 4u);
  EXPECT_EQ(hist.count(), 1u);
}

// Regression: underflow samples were double-bookkept into counts_[0], so
// low quantiles reported at least BucketLow(0) for samples known to be
// below min_value. With 3 of 4 samples in the underflow region, the median
// must interpolate inside [0, min_value), at exactly min_value * (2/3).
TEST(LogHistogramTest, UnderflowQuantilesInterpolateBelowMinValue) {
  LogHistogram hist(1e-6);
  hist.Add(1e-9);
  hist.Add(1e-9);
  hist.Add(1e-9);
  hist.Add(1e-3);
  EXPECT_EQ(hist.count(), 4u);
  // Median: target = 2 of 3 underflow samples.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 1e-6 * (2.0 / 3.0));
  EXPECT_LT(hist.Quantile(0.5), 1e-6);
  // p95 lands on the in-range sample's bucket (~1e-3, bucket is ~12% wide).
  EXPECT_GT(hist.Quantile(0.95), 1e-3 * 0.88);
  EXPECT_LT(hist.Quantile(0.95), 1e-3 * 1.13);
}

TEST(LogHistogramTest, SummaryMentionsCount) {
  LogHistogram hist;
  hist.Add(1e-3);
  EXPECT_NE(hist.Summary().find("n=1"), std::string::npos);
}

TEST(LatencySketchTest, BasicAccounting) {
  LatencySketch sketch;
  sketch.Add(5e-4);
  sketch.Add(2e-3);
  sketch.Add(1e-9);                                      // underflow
  sketch.Add(std::numeric_limits<double>::quiet_NaN());  // non-finite
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.underflow(), 1u);
  EXPECT_EQ(sketch.nonfinite(), 1u);
  EXPECT_NEAR(sketch.sum(), 5e-4 + 2e-3 + 1e-9, 1e-15);
}

TEST(LatencySketchTest, ClearResetsWithoutChangingGeometry) {
  LatencySketch sketch;
  for (int i = 0; i < 100; ++i) sketch.Add(1e-3);
  sketch.Add(std::numeric_limits<double>::infinity());
  sketch.Clear();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.nonfinite(), 0u);
  EXPECT_EQ(sketch.underflow(), 0u);
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  sketch.Add(2e-3);
  EXPECT_EQ(sketch.count(), 1u);
}

TEST(LatencySketchDeathTest, MergeRejectsMismatchedGeometry) {
  LatencySketch a(SketchGeometry{1e-6, 10, 9});
  LatencySketch b(SketchGeometry{1e-7, 10, 9});
  EXPECT_DEATH(a.Merge(b), "geometry mismatch");
}

// Sharded windows combine through Merge at epoch barriers. Quantiles are a
// pure function of the integer bucket counts, so N shards merged in any
// order must reproduce the fused single-sketch quantiles bit-for-bit.
TEST(LatencySketchTest, RandomizedMergeMatchesOneshot) {
  Rng rng(101);
  for (int round = 0; round < 20; ++round) {
    int shards = 1 + static_cast<int>(rng.NextBounded(8));
    LatencySketch fused;
    std::vector<LatencySketch> parts(static_cast<size_t>(shards));
    int samples = 200 + static_cast<int>(rng.NextBounded(800));
    for (int i = 0; i < samples; ++i) {
      double v = rng.NextExponential(1e-3);
      if (rng.NextBounded(50) == 0) v = 1e-9;  // underflow sprinkle
      if (rng.NextBounded(97) == 0) v = std::numeric_limits<double>::infinity();
      fused.Add(v);
      parts[rng.NextBounded(static_cast<uint64_t>(shards))].Add(v);
    }
    LatencySketch merged;
    // Merge in a rotated order to exercise order-independence.
    size_t start = rng.NextBounded(static_cast<uint64_t>(shards));
    for (int s = 0; s < shards; ++s) {
      merged.Merge(parts[(start + static_cast<size_t>(s)) % shards]);
    }
    EXPECT_EQ(merged.count(), fused.count());
    EXPECT_EQ(merged.underflow(), fused.underflow());
    EXPECT_EQ(merged.nonfinite(), fused.nonfinite());
    EXPECT_EQ(merged.bucket_counts(), fused.bucket_counts());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_DOUBLE_EQ(merged.Quantile(q), fused.Quantile(q)) << "q=" << q;
    }
    EXPECT_NEAR(merged.sum(), fused.sum(), 1e-12);
  }
}

TEST(LogHistogramTest, RandomizedMergeMatchesOneshot) {
  Rng rng(202);
  for (int round = 0; round < 10; ++round) {
    int shards = 2 + static_cast<int>(rng.NextBounded(5));
    LogHistogram fused;
    std::vector<LogHistogram> parts(static_cast<size_t>(shards));
    for (int i = 0; i < 500; ++i) {
      double v = rng.NextExponential(2e-3);
      fused.Add(v);
      parts[rng.NextBounded(static_cast<uint64_t>(shards))].Add(v);
    }
    LogHistogram merged;
    for (const LogHistogram& part : parts) merged.Merge(part);
    EXPECT_EQ(merged.count(), fused.count());
    for (double q : {0.05, 0.5, 0.9, 0.999}) {
      EXPECT_DOUBLE_EQ(merged.Quantile(q), fused.Quantile(q)) << "q=" << q;
    }
    EXPECT_NEAR(merged.sum(), fused.sum(), 1e-9);
  }
}

TEST(NormalizeToFractionsTest, SumsToOne) {
  auto fractions = NormalizeToFractions({1, 2, 3, 4});
  double sum = 0;
  for (double f : fractions) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(fractions[3], 0.4);
}

TEST(NormalizeToFractionsTest, ZeroTotalYieldsZeros) {
  auto fractions = NormalizeToFractions({0, 0});
  EXPECT_EQ(fractions[0], 0.0);
  EXPECT_EQ(fractions[1], 0.0);
}

TEST(L1DistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(L1Distance({1, 0}, {0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(L1Distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
}

}  // namespace

TEST(RunningStatTest, SingleSample) {
  RunningStat stat;
  stat.Add(4.5);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stat.min(), 4.5);
  EXPECT_DOUBLE_EQ(stat.max(), 4.5);
  EXPECT_DOUBLE_EQ(stat.sum(), 4.5);
  // One sample has no spread.
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(RunningStatTest, MergeTwoEmpties) {
  RunningStat a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(LogHistogramTest, EmptyHistogramEdges) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  // Quantiles of an empty histogram must not crash and stay finite.
  EXPECT_GE(hist.Quantile(0.0), 0.0);
  EXPECT_GE(hist.Quantile(0.5), 0.0);
  EXPECT_GE(hist.Quantile(1.0), 0.0);
}

TEST(LogHistogramTest, SingleSampleQuantilesBracketValue) {
  // With one sample every quantile interpolates inside that sample's
  // bucket, so p0 and p100 bracket the value within bucket resolution.
  LogHistogram hist;
  hist.Add(5e-3);
  double p0 = hist.Quantile(0.0);
  double p100 = hist.Quantile(1.0);
  EXPECT_LE(p0, 5e-3 * 1.13);  // one 20-per-decade bucket is ~12% wide
  EXPECT_GE(p100, 5e-3 * 0.88);
  EXPECT_LE(p0, p100);
  EXPECT_DOUBLE_EQ(hist.mean(), 5e-3);
}

TEST(LogHistogramTest, ExtremeQuantilesOrderedUnderLoad) {
  LogHistogram hist;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) hist.Add(rng.NextExponential(2e-3));
  double p0 = hist.Quantile(0.0);
  double p100 = hist.Quantile(1.0);
  EXPECT_GT(p0, 0.0);
  EXPECT_LE(p0, hist.Quantile(0.5));
  EXPECT_LE(hist.Quantile(0.99), p100);
}

TEST(NormalizeToFractionsTest, EmptyInput) {
  EXPECT_TRUE(NormalizeToFractions({}).empty());
}

TEST(NormalizeToFractionsTest, SingleWeight) {
  auto fractions = NormalizeToFractions({7.0});
  ASSERT_EQ(fractions.size(), 1u);
  EXPECT_DOUBLE_EQ(fractions[0], 1.0);
}

TEST(L1DistanceTest, EmptyVectorsAreIdentical) {
  EXPECT_DOUBLE_EQ(L1Distance({}, {}), 0.0);
}

}  // namespace hyperprof
