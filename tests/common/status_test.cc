#include "common/status.h"

#include <gtest/gtest.h>

namespace hyperprof {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("block 7");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "block 7");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: block 7");
}

TEST(StatusTest, FactoryCodesMatch) {
  EXPECT_EQ(Status::InvalidArgument("").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::Unavailable("server down");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

}  // namespace
}  // namespace hyperprof
