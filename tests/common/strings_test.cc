#include "common/strings.h"

#include <gtest/gtest.h>

namespace hyperprof {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutputAllocatesCorrectly) {
  std::string big(500, 'a');
  std::string out = StrFormat("[%s]", big.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrSplitTest, SplitsAndKeepsEmpties) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("tcmalloc::Alloc", "tcmalloc::"));
  EXPECT_FALSE(StartsWith("tc", "tcmalloc::"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(HumanBytesTest, PicksBinaryUnits) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KiB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(1ULL << 50), "1.00 PiB");
}

TEST(HumanSecondsTest, PicksTimeUnits) {
  EXPECT_EQ(HumanSeconds(0), "0 s");
  EXPECT_EQ(HumanSeconds(5e-9), "5.0 ns");
  EXPECT_EQ(HumanSeconds(518.3e-6), "518.3 us");
  EXPECT_EQ(HumanSeconds(12e-3), "12.0 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
}

}  // namespace

TEST(StrFormatTest, EmptyFormat) {
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrJoinTest, EmptyAndSingletonInputs) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
  EXPECT_EQ(StrJoin({"", ""}, ","), ",");
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyField) {
  auto fields = StrSplit("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(StrSplitTest, SeparatorOnlyYieldsEmptyFields) {
  auto fields = StrSplit(",,", ',');
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_EQ(f, "");
}

TEST(StartsWithTest, EmptyEdges) {
  EXPECT_TRUE(StartsWith("", ""));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(HumanBytesTest, ZeroAndSubUnitValues) {
  EXPECT_NE(HumanBytes(0).find("0"), std::string::npos);
  // Below 1 KiB stays in plain bytes.
  EXPECT_NE(HumanBytes(512).find("B"), std::string::npos);
}

TEST(HumanSecondsTest, ZeroRendersWithoutCrashing) {
  EXPECT_FALSE(HumanSeconds(0).empty());
}

}  // namespace hyperprof
