#include "common/table.h"

#include <gtest/gtest.h>

namespace hyperprof {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable table({"label", "x", "y"});
  table.AddRow("row", {1.234, 5.678}, "%.1f");
  std::string out = table.ToString();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.7"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace hyperprof
