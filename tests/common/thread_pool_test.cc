#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace hyperprof {
namespace {

TEST(ThreadPoolTest, SubmitRunsJobAndFutureResolves) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto future = pool.Submit([&] { value = 42; });
  future.get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, ZeroThreadRequestStillGetsOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.Submit([] {});
  future.get();
}

TEST(ThreadPoolTest, ManyJobsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter, 200);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing job and keeps serving.
  auto ok = pool.Submit([] {});
  ok.get();
}

TEST(ThreadPoolTest, ReuseAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 30; ++i) {
      futures.push_back(pool.Submit([&] { ++counter; }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(counter, 30) << "batch " << batch;
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllJobsFinish) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(20,
                                [&](size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("sweep failed");
                                  }
                                  ++completed;
                                }),
               std::runtime_error);
  EXPECT_EQ(completed, 19);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ++counter; });
    }
  }  // destructor must finish the queue before joining
  EXPECT_EQ(counter, 50);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  // Regression: a job running on the pool fans out its own sub-jobs with
  // ParallelFor. With a single worker the pool is at capacity, so before
  // help-running the outer job parked forever while its sub-jobs starved
  // in the queue.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto outer = pool.Submit([&] {
    pool.ParallelFor(8, [&](size_t) { ++inner; });
  });
  outer.get();
  EXPECT_EQ(inner, 8);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForCompletes) {
  // Two levels of nesting on a pool smaller than either fan-out: every
  // waiter must keep draining the queue, not just the outermost one.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { ++leaves; });
  });
  EXPECT_EQ(leaves, 16);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(1);
  auto outer = pool.Submit([&] {
    pool.ParallelFor(4, [&](size_t i) {
      if (i == 2) throw std::runtime_error("inner boom");
    });
  });
  EXPECT_THROW(outer.get(), std::runtime_error);
  // The pool keeps serving afterwards.
  pool.Submit([] {}).get();
}

TEST(ThreadPoolTest, ResolveParallelismMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveParallelism(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveParallelism(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveParallelism(7), 7u);
}

}  // namespace
}  // namespace hyperprof
