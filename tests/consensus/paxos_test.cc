#include "consensus/paxos.h"

#include <set>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "net/fault.h"

namespace hyperprof::consensus {
namespace {

class PaxosTest : public ::testing::Test {
 protected:
  PaxosTest() : rpc_(&simulator_, &network_, Rng(3)) {}

  std::vector<net::NodeId> Acceptors(int count) {
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < count; ++i) {
      nodes.push_back(net::NodeId{0, static_cast<uint32_t>(i % 3),
                                  static_cast<uint32_t>(10 + i)});
    }
    return nodes;
  }

  sim::Simulator simulator_;
  net::NetworkModel network_;
  net::RpcSystem rpc_;
};

TEST_F(PaxosTest, SingleProposerChoosesItsValue) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(3), PaxosParams(), Rng(1));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "v-alpha",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  EXPECT_TRUE(result.chosen);
  EXPECT_EQ(result.value, "v-alpha");
  EXPECT_EQ(result.phase1_round_trips, 1);
  EXPECT_EQ(result.phase2_round_trips, 1);
  EXPECT_GT(result.elapsed, SimTime::Zero());
  EXPECT_EQ(group.ChosenValue(), "v-alpha");
}

TEST_F(PaxosTest, MajorityAcceptanceRecorded) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(5), PaxosParams(), Rng(2));
  group.Propose(net::NodeId{0, 0, 1}, 1, "value",
                [](const ProposeResult&) {});
  simulator_.Run();
  size_t accepted = 0;
  for (size_t i = 0; i < group.acceptor_count(); ++i) {
    if (group.acceptor_state(i).has_accepted) ++accepted;
  }
  EXPECT_GE(accepted, group.majority());
}

TEST_F(PaxosTest, CompetingProposersAgreeOnOneValue) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(5), PaxosParams(), Rng(4));
  std::vector<ProposeResult> results;
  for (uint32_t p = 1; p <= 4; ++p) {
    group.Propose(net::NodeId{0, p % 3, p}, p, StrFormat("value-%u", p),
                  [&results](const ProposeResult& r) {
                    results.push_back(r);
                  });
  }
  simulator_.Run();
  ASSERT_EQ(results.size(), 4u);
  std::set<std::string> chosen_values;
  for (const auto& result : results) {
    ASSERT_TRUE(result.chosen);
    chosen_values.insert(result.value);
  }
  // Safety: every proposer learned the SAME value.
  EXPECT_EQ(chosen_values.size(), 1u);
  EXPECT_EQ(group.ChosenValue(), *chosen_values.begin());
}

TEST_F(PaxosTest, SafetyHoldsAcrossManySeeds) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    sim::Simulator simulator;
    net::NetworkModel network;
    net::RpcSystem rpc(&simulator, &network, Rng(seed * 11));
    PaxosGroup group(&simulator, &rpc, Acceptors(3), PaxosParams(),
                     Rng(seed));
    std::set<std::string> chosen_values;
    int completions = 0;
    for (uint32_t p = 1; p <= 3; ++p) {
      group.Propose(net::NodeId{0, 0, p}, p, StrFormat("s%llu-p%u",
                    (unsigned long long)seed, p),
                    [&](const ProposeResult& r) {
                      ++completions;
                      if (r.chosen) chosen_values.insert(r.value);
                    });
    }
    simulator.Run();
    EXPECT_EQ(completions, 3) << "seed " << seed;
    EXPECT_LE(chosen_values.size(), 1u) << "seed " << seed;
  }
}

TEST_F(PaxosTest, LateProposerAdoptsChosenValue) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(3), PaxosParams(), Rng(6));
  ProposeResult first;
  group.Propose(net::NodeId{0, 0, 1}, 1, "first",
                [&](const ProposeResult& r) { first = r; });
  simulator_.Run();
  ASSERT_TRUE(first.chosen);
  // A later proposer with a different value must learn "first".
  ProposeResult second;
  group.Propose(net::NodeId{0, 1, 2}, 2, "second",
                [&](const ProposeResult& r) { second = r; });
  simulator_.Run();
  ASSERT_TRUE(second.chosen);
  EXPECT_EQ(second.value, "first");
}

TEST_F(PaxosTest, ElapsedReflectsCrossClusterLatency) {
  // Acceptors across clusters: one consensus round needs at least two
  // cross-cluster round trips (prepare + accept).
  std::vector<net::NodeId> nodes = {net::NodeId{0, 1, 1},
                                    net::NodeId{0, 2, 2},
                                    net::NodeId{0, 3, 3}};
  PaxosGroup group(&simulator_, &rpc_, nodes, PaxosParams(), Rng(7));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "v",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  ASSERT_TRUE(result.chosen);
  // 2 RTTs x ~240us cross-cluster + service times.
  EXPECT_GT(result.elapsed, SimTime::Micros(500));
}

TEST_F(PaxosTest, SingleAcceptorGroupWorks) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(1), PaxosParams(), Rng(8));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "solo",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  EXPECT_TRUE(result.chosen);
  EXPECT_EQ(group.majority(), 1u);
}


TEST_F(PaxosTest, SingleReplicaCommitUnderFaults) {
  // Single-acceptor group (replication factor 1) with an armed fault
  // model: drops and errors surface as rejected attempts and the proposer
  // retries through them to commit.
  net::FaultModel faults{Rng(99)};
  net::FaultSpec spec;
  spec.drop_probability = 0.2;
  spec.error_probability = 0.1;
  faults.set_default_faults(spec);
  rpc_.set_fault_model(&faults);
  PaxosGroup group(&simulator_, &rpc_, Acceptors(1), PaxosParams(), Rng(9));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "solo-faulted",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  EXPECT_TRUE(result.chosen);
  EXPECT_EQ(result.value, "solo-faulted");
  EXPECT_EQ(group.ChosenValue(), "solo-faulted");
  EXPECT_GT(faults.decisions(), 0u);
}

TEST_F(PaxosTest, CommitSurvivesMessageDrops) {
  // Three acceptors with lossy links: every dropped prepare/accept counts
  // as a rejection, so rounds fail and back off until a clean majority
  // round lands. Safety must hold throughout.
  net::FaultModel faults{Rng(42)};
  net::FaultSpec spec;
  spec.drop_probability = 0.15;
  spec.error_probability = 0.05;
  faults.set_default_faults(spec);
  rpc_.set_fault_model(&faults);
  PaxosGroup group(&simulator_, &rpc_, Acceptors(3), PaxosParams(), Rng(10));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "v-durable",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  ASSERT_TRUE(result.chosen);
  EXPECT_EQ(result.value, "v-durable");
  EXPECT_EQ(group.ChosenValue(), "v-durable");
  EXPECT_GT(faults.injected_total(), 0u);
}

TEST_F(PaxosTest, DuelingProposersAgreeUnderFaults) {
  // Two proposers race on a faulty fabric; every completed proposal must
  // report the same chosen value, and it must match the acceptor state.
  net::FaultModel faults{Rng(7)};
  net::FaultSpec spec;
  spec.drop_probability = 0.1;
  faults.set_default_faults(spec);
  rpc_.set_fault_model(&faults);
  PaxosGroup group(&simulator_, &rpc_, Acceptors(5), PaxosParams(), Rng(11));
  std::vector<ProposeResult> results;
  for (uint32_t p = 1; p <= 2; ++p) {
    group.Propose(net::NodeId{0, p % 3, p}, p, StrFormat("duel-%u", p),
                  [&](const ProposeResult& r) { results.push_back(r); });
  }
  simulator_.Run();
  ASSERT_EQ(results.size(), 2u);
  std::set<std::string> chosen_values;
  for (const auto& r : results) {
    if (r.chosen) chosen_values.insert(r.value);
  }
  ASSERT_FALSE(chosen_values.empty());
  EXPECT_EQ(chosen_values.size(), 1u);
  EXPECT_EQ(group.ChosenValue(), *chosen_values.begin());
}

TEST_F(PaxosTest, LeaderFailureMidRoundRecovers) {
  // The round leader loses its majority mid-protocol: outage windows take
  // two of three acceptors dark from the start, so early rounds fail
  // (kUnavailable counts as a rejection) and the proposer must keep
  // re-preparing until the outage lifts. Liveness and safety both hold.
  std::vector<net::NodeId> nodes = Acceptors(3);
  net::FaultModel faults{Rng(13)};
  const SimTime outage_end = SimTime::Millis(10);
  faults.AddOutage({nodes[1], SimTime::Zero(), outage_end});
  faults.AddOutage({nodes[2], SimTime::Zero(), outage_end});
  rpc_.set_fault_model(&faults);
  PaxosGroup group(&simulator_, &rpc_, nodes, PaxosParams(), Rng(12));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "after-failover",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  ASSERT_TRUE(result.chosen);
  EXPECT_EQ(result.value, "after-failover");
  EXPECT_EQ(group.ChosenValue(), "after-failover");
  // The commit could only land after the outage lifted, and it took more
  // than one prepare round to get there.
  EXPECT_GT(result.elapsed, outage_end);
  EXPECT_GT(result.phase1_round_trips, 1);
  EXPECT_GT(faults.outage_hits(), 0u);
}

}  // namespace
}  // namespace hyperprof::consensus
