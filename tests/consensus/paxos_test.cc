#include "consensus/paxos.h"

#include <set>

#include <gtest/gtest.h>

#include "common/strings.h"

namespace hyperprof::consensus {
namespace {

class PaxosTest : public ::testing::Test {
 protected:
  PaxosTest() : rpc_(&simulator_, &network_, Rng(3)) {}

  std::vector<net::NodeId> Acceptors(int count) {
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < count; ++i) {
      nodes.push_back(net::NodeId{0, static_cast<uint32_t>(i % 3),
                                  static_cast<uint32_t>(10 + i)});
    }
    return nodes;
  }

  sim::Simulator simulator_;
  net::NetworkModel network_;
  net::RpcSystem rpc_;
};

TEST_F(PaxosTest, SingleProposerChoosesItsValue) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(3), PaxosParams(), Rng(1));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "v-alpha",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  EXPECT_TRUE(result.chosen);
  EXPECT_EQ(result.value, "v-alpha");
  EXPECT_EQ(result.phase1_round_trips, 1);
  EXPECT_EQ(result.phase2_round_trips, 1);
  EXPECT_GT(result.elapsed, SimTime::Zero());
  EXPECT_EQ(group.ChosenValue(), "v-alpha");
}

TEST_F(PaxosTest, MajorityAcceptanceRecorded) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(5), PaxosParams(), Rng(2));
  group.Propose(net::NodeId{0, 0, 1}, 1, "value",
                [](const ProposeResult&) {});
  simulator_.Run();
  size_t accepted = 0;
  for (size_t i = 0; i < group.acceptor_count(); ++i) {
    if (group.acceptor_state(i).has_accepted) ++accepted;
  }
  EXPECT_GE(accepted, group.majority());
}

TEST_F(PaxosTest, CompetingProposersAgreeOnOneValue) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(5), PaxosParams(), Rng(4));
  std::vector<ProposeResult> results;
  for (uint32_t p = 1; p <= 4; ++p) {
    group.Propose(net::NodeId{0, p % 3, p}, p, StrFormat("value-%u", p),
                  [&results](const ProposeResult& r) {
                    results.push_back(r);
                  });
  }
  simulator_.Run();
  ASSERT_EQ(results.size(), 4u);
  std::set<std::string> chosen_values;
  for (const auto& result : results) {
    ASSERT_TRUE(result.chosen);
    chosen_values.insert(result.value);
  }
  // Safety: every proposer learned the SAME value.
  EXPECT_EQ(chosen_values.size(), 1u);
  EXPECT_EQ(group.ChosenValue(), *chosen_values.begin());
}

TEST_F(PaxosTest, SafetyHoldsAcrossManySeeds) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    sim::Simulator simulator;
    net::NetworkModel network;
    net::RpcSystem rpc(&simulator, &network, Rng(seed * 11));
    PaxosGroup group(&simulator, &rpc, Acceptors(3), PaxosParams(),
                     Rng(seed));
    std::set<std::string> chosen_values;
    int completions = 0;
    for (uint32_t p = 1; p <= 3; ++p) {
      group.Propose(net::NodeId{0, 0, p}, p, StrFormat("s%llu-p%u",
                    (unsigned long long)seed, p),
                    [&](const ProposeResult& r) {
                      ++completions;
                      if (r.chosen) chosen_values.insert(r.value);
                    });
    }
    simulator.Run();
    EXPECT_EQ(completions, 3) << "seed " << seed;
    EXPECT_LE(chosen_values.size(), 1u) << "seed " << seed;
  }
}

TEST_F(PaxosTest, LateProposerAdoptsChosenValue) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(3), PaxosParams(), Rng(6));
  ProposeResult first;
  group.Propose(net::NodeId{0, 0, 1}, 1, "first",
                [&](const ProposeResult& r) { first = r; });
  simulator_.Run();
  ASSERT_TRUE(first.chosen);
  // A later proposer with a different value must learn "first".
  ProposeResult second;
  group.Propose(net::NodeId{0, 1, 2}, 2, "second",
                [&](const ProposeResult& r) { second = r; });
  simulator_.Run();
  ASSERT_TRUE(second.chosen);
  EXPECT_EQ(second.value, "first");
}

TEST_F(PaxosTest, ElapsedReflectsCrossClusterLatency) {
  // Acceptors across clusters: one consensus round needs at least two
  // cross-cluster round trips (prepare + accept).
  std::vector<net::NodeId> nodes = {net::NodeId{0, 1, 1},
                                    net::NodeId{0, 2, 2},
                                    net::NodeId{0, 3, 3}};
  PaxosGroup group(&simulator_, &rpc_, nodes, PaxosParams(), Rng(7));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "v",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  ASSERT_TRUE(result.chosen);
  // 2 RTTs x ~240us cross-cluster + service times.
  EXPECT_GT(result.elapsed, SimTime::Micros(500));
}

TEST_F(PaxosTest, SingleAcceptorGroupWorks) {
  PaxosGroup group(&simulator_, &rpc_, Acceptors(1), PaxosParams(), Rng(8));
  ProposeResult result;
  group.Propose(net::NodeId{0, 0, 1}, 1, "solo",
                [&](const ProposeResult& r) { result = r; });
  simulator_.Run();
  EXPECT_TRUE(result.chosen);
  EXPECT_EQ(group.majority(), 1u);
}

}  // namespace
}  // namespace hyperprof::consensus
