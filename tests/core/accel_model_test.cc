#include "core/accel_model.h"

#include <gtest/gtest.h>

namespace hyperprof::model {
namespace {

Component MakeComponent(const std::string& name, double t_sub,
                        double speedup) {
  Component component;
  component.name = name;
  component.t_sub = t_sub;
  component.speedup = speedup;
  return component;
}

TEST(ComponentTest, PenaltyEquation8) {
  Component component;
  component.t_setup = 1e-3;
  component.bytes = 4e9;      // 4 GB
  component.bandwidth = 4e9;  // 4 GB/s -> 2s round trip
  EXPECT_DOUBLE_EQ(component.Penalty(), 1e-3 + 2.0);
}

TEST(ComponentTest, AcceleratedTimeEquation7) {
  Component component = MakeComponent("c", 10e-3, 4.0);
  component.t_setup = 1e-3;
  EXPECT_DOUBLE_EQ(component.AcceleratedTime(), 10e-3 / 4.0 + 1e-3);
}

TEST(ComponentTest, OnChipHasNoTransferPenalty) {
  Component component = MakeComponent("c", 1e-3, 2.0);
  component.bytes = 0;
  EXPECT_DOUBLE_EQ(component.Penalty(), 0.0);
}

TEST(WorkloadTest, UnacceleratedResidualEquation4) {
  Workload workload;
  workload.t_cpu = 10e-3;
  workload.components.push_back(MakeComponent("a", 3e-3, 2));
  workload.components.push_back(MakeComponent("b", 4e-3, 2));
  EXPECT_DOUBLE_EQ(workload.CoveredCpuTime(), 7e-3);
  EXPECT_DOUBLE_EQ(workload.UnacceleratedCpuTime(), 3e-3);
}

TEST(WorkloadTest, OverCoverageClampsResidualToZero) {
  Workload workload;
  workload.t_cpu = 1e-3;
  workload.components.push_back(MakeComponent("a", 2e-3, 2));
  EXPECT_DOUBLE_EQ(workload.UnacceleratedCpuTime(), 0.0);
}

TEST(BaselineTest, Equation1SerialWhenFIsOne) {
  Workload workload;
  workload.t_cpu = 3.0;
  workload.t_dep = 2.0;
  workload.f = 1.0;
  EXPECT_DOUBLE_EQ(AccelModel(workload).BaselineE2e(), 5.0);
}

TEST(BaselineTest, Equation1FullOverlapWhenFIsZero) {
  Workload workload;
  workload.t_cpu = 3.0;
  workload.t_dep = 2.0;
  workload.f = 0.0;
  EXPECT_DOUBLE_EQ(AccelModel(workload).BaselineE2e(), 3.0);  // max
}

TEST(BaselineTest, Equation1PartialOverlap) {
  Workload workload;
  workload.t_cpu = 3.0;
  workload.t_dep = 2.0;
  workload.f = 0.5;
  // 3 + 2 - 0.5*min(3,2) = 4.
  EXPECT_DOUBLE_EQ(AccelModel(workload).BaselineE2e(), 4.0);
}

TEST(AcceleratedCpuTest, SynchronousSumsEquation5) {
  Workload workload;
  workload.t_cpu = 10.0;
  workload.components.push_back(MakeComponent("a", 4.0, 2.0));  // -> 2
  workload.components.push_back(MakeComponent("b", 4.0, 4.0));  // -> 1
  for (auto& component : workload.components) component.overlap = 1.0;
  // t_nacc = 2, t_acc = 2+1 = 3.
  EXPECT_DOUBLE_EQ(AccelModel(workload).AcceleratedCpu(), 5.0);
}

TEST(AcceleratedCpuTest, AsynchronousTakesMaxEquation5And6) {
  Workload workload;
  workload.t_cpu = 10.0;
  workload.components.push_back(MakeComponent("a", 4.0, 2.0));  // -> 2
  workload.components.push_back(MakeComponent("b", 4.0, 4.0));  // -> 1
  for (auto& component : workload.components) component.overlap = 0.0;
  // t_acc = max(0, max(2,1)) = 2; t_nacc = 2.
  EXPECT_DOUBLE_EQ(AccelModel(workload).AcceleratedCpu(), 4.0);
}

TEST(AcceleratedCpuTest, PartialOverlapInterpolates) {
  Workload workload;
  workload.t_cpu = 8.0;
  workload.components.push_back(MakeComponent("a", 4.0, 2.0));  // -> 2
  workload.components.push_back(MakeComponent("b", 4.0, 4.0));  // -> 1
  for (auto& component : workload.components) component.overlap = 0.5;
  // sum g*t' = 1.5 < largest 2 -> t_acc = 2.
  EXPECT_DOUBLE_EQ(AccelModel(workload).AcceleratedCpu(), 2.0);
}

TEST(ChainedTest, Equations9Through12) {
  Workload workload;
  workload.t_cpu = 20.0;
  Component a = MakeComponent("a", 8.0, 4.0);  // service 2
  a.t_setup = 0.5;
  a.chained = true;
  Component b = MakeComponent("b", 6.0, 2.0);  // service 3
  b.t_setup = 1.0;
  b.chained = true;
  workload.components = {a, b};
  // t_nacc = 20 - 14 = 6.
  // t_lpen = max(0.5, 1.0) = 1; t_lsubnp = max(2, 3) = 3; t_chnd = 4.
  EXPECT_DOUBLE_EQ(AccelModel(workload).AcceleratedCpu(), 10.0);
}

TEST(ChainedTest, MixedChainedAndUnchained) {
  Workload workload;
  workload.t_cpu = 20.0;
  Component chained_a = MakeComponent("a", 8.0, 4.0);
  chained_a.chained = true;
  Component chained_b = MakeComponent("b", 6.0, 2.0);
  chained_b.chained = true;
  Component solo = MakeComponent("c", 4.0, 2.0);  // -> 2, sync
  workload.components = {chained_a, chained_b, solo};
  // t_chnd = 3, t_acc = 2, t_nacc = 2 -> 7.
  EXPECT_DOUBLE_EQ(AccelModel(workload).AcceleratedCpu(), 7.0);
}

TEST(ChainedTest, PaperTable8ModeledValue) {
  // Parameters measured on the paper's RISC-V SoC (Table 8): the model
  // must reproduce the published modeled chained time of 6,459.3 us.
  Workload workload;
  workload.t_cpu = (4948.7 + 518.3 + 1112.5) * 1e-6;
  workload.t_dep = 0;
  workload.f = 1.0;
  Component serialize = MakeComponent("Proto. Ser.", 518.3e-6, 31.0);
  serialize.t_setup = 1488.9e-6;
  serialize.chained = true;
  Component hash = MakeComponent("SHA3", 1112.5e-6, 51.3);
  hash.t_setup = 4.1e-6;
  hash.chained = true;
  workload.components = {serialize, hash};
  AccelModel model(workload);
  EXPECT_NEAR(model.AcceleratedE2e() * 1e6, 6459.3, 1.0);
}

TEST(SpeedupTest, NoAccelerationIsUnity) {
  Workload workload;
  workload.t_cpu = 5.0;
  workload.t_dep = 3.0;
  workload.f = 1.0;
  EXPECT_DOUBLE_EQ(AccelModel(workload).Speedup(), 1.0);
}

TEST(SpeedupTest, RemoveDepDropsDependencies) {
  Workload workload;
  workload.t_cpu = 5.0;
  workload.t_dep = 5.0;
  workload.f = 1.0;
  AccelModel model(workload);
  EXPECT_DOUBLE_EQ(model.Speedup(false), 1.0);
  EXPECT_DOUBLE_EQ(model.Speedup(true), 2.0);
}

TEST(SpeedupTest, AmdahlLimitRespected) {
  // 50% of CPU accelerated infinitely fast cannot beat 2x on CPU time.
  Workload workload;
  workload.t_cpu = 10.0;
  workload.t_dep = 0.0;
  workload.components.push_back(MakeComponent("half", 5.0, 1e9));
  double speedup = AccelModel(workload).Speedup();
  EXPECT_LT(speedup, 2.0 + 1e-9);
  EXPECT_GT(speedup, 1.99);
}

// Property sweep: asynchronous execution never loses to synchronous, and
// chained execution is bounded between them; penalties only hurt.
struct PropertyCase {
  double t_cpu;
  double t_dep;
  double f;
  double speedup;
  double setup;
};

class ModelPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ModelPropertyTest, InvocationOrderings) {
  const PropertyCase& param = GetParam();
  Workload base;
  base.t_cpu = param.t_cpu;
  base.t_dep = param.t_dep;
  base.f = param.f;
  // Three components covering 60% of CPU.
  for (int i = 0; i < 3; ++i) {
    Component component =
        MakeComponent("c" + std::to_string(i), 0.2 * param.t_cpu,
                      param.speedup);
    component.t_setup = param.setup;
    base.components.push_back(component);
  }
  auto with_mode = [&](double overlap, bool chained) {
    Workload workload = base;
    for (auto& component : workload.components) {
      component.overlap = overlap;
      component.chained = chained;
    }
    return AccelModel(workload).Speedup();
  };
  double sync = with_mode(1.0, false);
  double async = with_mode(0.0, false);
  double chained = with_mode(1.0, true);
  EXPECT_GE(async, sync - 1e-12);
  EXPECT_GE(chained, sync - 1e-12);
  EXPECT_LE(chained, async + 1e-12);
  EXPECT_GE(sync, 0.9);  // acceleration plus penalty can dip below 1
}

TEST_P(ModelPropertyTest, MoreSpeedupNeverHurts) {
  const PropertyCase& param = GetParam();
  Workload workload;
  workload.t_cpu = param.t_cpu;
  workload.t_dep = param.t_dep;
  workload.f = param.f;
  Component component = MakeComponent("c", 0.5 * param.t_cpu, 1.0);
  component.t_setup = param.setup;
  workload.components.push_back(component);
  double previous = 0;
  for (double s : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    workload.components[0].speedup = s;
    double speedup = AccelModel(workload).Speedup();
    EXPECT_GE(speedup, previous - 1e-12);
    previous = speedup;
  }
}

TEST_P(ModelPropertyTest, BaselineEqualsAcceleratedAtUnitySpeedupNoPenalty) {
  const PropertyCase& param = GetParam();
  Workload workload;
  workload.t_cpu = param.t_cpu;
  workload.t_dep = param.t_dep;
  workload.f = param.f;
  workload.components.push_back(MakeComponent("c", 0.4 * param.t_cpu, 1.0));
  AccelModel model(workload);
  EXPECT_NEAR(model.AcceleratedE2e(), model.BaselineE2e(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPropertyTest,
    ::testing::Values(PropertyCase{1.0, 0.0, 1.0, 8.0, 0.0},
                      PropertyCase{1.0, 1.0, 1.0, 8.0, 0.0},
                      PropertyCase{1.0, 1.0, 0.0, 8.0, 0.0},
                      PropertyCase{1.0, 5.0, 0.5, 16.0, 0.0},
                      PropertyCase{2.0, 0.5, 1.0, 4.0, 1e-3},
                      PropertyCase{0.1, 10.0, 1.0, 64.0, 1e-4},
                      PropertyCase{5.0, 0.0, 0.3, 2.0, 1e-2}));

}  // namespace
}  // namespace hyperprof::model
