#include "core/configs.h"

#include <gtest/gtest.h>

namespace hyperprof::model {
namespace {

Workload TwoComponentWorkload() {
  Workload workload;
  workload.t_cpu = 10e-3;
  Component a;
  a.name = "a";
  a.t_sub = 3e-3;
  Component b;
  b.name = "b";
  b.t_sub = 2e-3;
  workload.components = {a, b};
  return workload;
}

TEST(ConfigsTest, FactoryNamesAndModes) {
  EXPECT_EQ(AccelSystemConfig::SyncOffChip().placement,
            Placement::kOffChip);
  EXPECT_EQ(AccelSystemConfig::SyncOffChip().invocation,
            Invocation::kSynchronous);
  EXPECT_EQ(AccelSystemConfig::AsyncOnChip().invocation,
            Invocation::kAsynchronous);
  EXPECT_EQ(AccelSystemConfig::ChainedOnChip().invocation,
            Invocation::kChained);
  EXPECT_EQ(AccelSystemConfig::ChainedOnChip().placement,
            Placement::kOnChip);
}

TEST(ConfigsTest, ApplySynchronous) {
  Workload workload = TwoComponentWorkload();
  ApplyConfig(workload, AccelSystemConfig::SyncOnChip(), 1024);
  for (const auto& component : workload.components) {
    EXPECT_DOUBLE_EQ(component.overlap, 1.0);
    EXPECT_FALSE(component.chained);
    EXPECT_DOUBLE_EQ(component.bytes, 0.0);  // on-chip ignores offload
  }
}

TEST(ConfigsTest, ApplyAsynchronous) {
  Workload workload = TwoComponentWorkload();
  ApplyConfig(workload, AccelSystemConfig::AsyncOnChip(), 0);
  for (const auto& component : workload.components) {
    EXPECT_DOUBLE_EQ(component.overlap, 0.0);
    EXPECT_FALSE(component.chained);
  }
}

TEST(ConfigsTest, ApplyChained) {
  Workload workload = TwoComponentWorkload();
  ApplyConfig(workload, AccelSystemConfig::ChainedOnChip(), 0);
  for (const auto& component : workload.components) {
    EXPECT_TRUE(component.chained);
  }
}

TEST(ConfigsTest, ApplyOffChipSetsBytesAndBandwidth) {
  Workload workload = TwoComponentWorkload();
  AccelSystemConfig config = AccelSystemConfig::SyncOffChip();
  config.link_bandwidth = 8e9;
  ApplyConfig(workload, config, 4096);
  for (const auto& component : workload.components) {
    EXPECT_DOUBLE_EQ(component.bytes, 4096.0);
    EXPECT_DOUBLE_EQ(component.bandwidth, 8e9);
  }
}

TEST(ConfigsTest, ApplySetupTime) {
  Workload workload = TwoComponentWorkload();
  AccelSystemConfig config = AccelSystemConfig::SyncOnChip();
  config.setup_time = 5e-6;
  ApplyConfig(workload, config, 0);
  for (const auto& component : workload.components) {
    EXPECT_DOUBLE_EQ(component.t_setup, 5e-6);
  }
}

TEST(ConfigsTest, Names) {
  EXPECT_STREQ(PlacementName(Placement::kOnChip), "On-Chip");
  EXPECT_STREQ(PlacementName(Placement::kOffChip), "Off-Chip");
  EXPECT_STREQ(InvocationName(Invocation::kChained), "Chained");
  EXPECT_EQ(AccelSystemConfig::SyncOffChip().name, "Sync + Off-Chip");
}

}  // namespace
}  // namespace hyperprof::model
