#include "core/limit_studies.h"

#include <gtest/gtest.h>

namespace hyperprof::model {
namespace {

/** A workload shaped like a CPU-heavy database query. */
Workload DatabaseLike() {
  Workload workload;
  workload.name = "db";
  workload.t_cpu = 6e-3;
  workload.t_dep = 4e-3;
  workload.f = 1.0;
  const char* names[] = {"Compression", "RPC", "Protobuf", "STL",
                         "Operating Systems", "Read", "Write"};
  for (const char* name : names) {
    Component component;
    component.name = name;
    component.t_sub = 0.1 * workload.t_cpu;
    workload.components.push_back(component);
  }
  return workload;
}

TEST(UniformSweepTest, SpeedupMonotoneInFactor) {
  Workload base = DatabaseLike();
  auto curve =
      UniformSpeedupSweep(base, {1, 2, 4, 8, 16, 32, 64}, false);
  ASSERT_EQ(curve.size(), 7u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].e2e_speedup, curve[i - 1].e2e_speedup);
  }
  EXPECT_DOUBLE_EQ(curve[0].e2e_speedup, 1.0);  // s=1, no penalty
}

TEST(UniformSweepTest, RemovingDependenciesHelps) {
  Workload base = DatabaseLike();
  auto with_dep = UniformSpeedupSweep(base, {8.0}, false);
  auto without_dep = UniformSpeedupSweep(base, {8.0}, true);
  EXPECT_GT(without_dep[0].e2e_speedup, with_dep[0].e2e_speedup);
}

TEST(UniformSweepTest, WithDepSpeedupBoundedByDepShare) {
  // With dependencies kept and f=1, speedup can never exceed
  // t_e2e / t_dep.
  Workload base = DatabaseLike();
  auto curve = UniformSpeedupSweep(base, {1000.0}, false);
  EXPECT_LE(curve[0].e2e_speedup,
            (base.t_cpu + base.t_dep) / base.t_dep + 1e-9);
}

TEST(UniformSweepTest, RemoteDominatedWorkloadHasHugeUpperBound) {
  // The BigTable effect: tiny CPU share + dependency removal -> orders of
  // magnitude.
  Workload workload;
  workload.t_cpu = 1e-3;
  workload.t_dep = 1.0;
  workload.f = 1.0;
  Component component;
  component.name = "c";
  component.t_sub = 0.95e-3;
  workload.components.push_back(component);
  auto curve = UniformSpeedupSweep(workload, {64.0}, true);
  EXPECT_GT(curve[0].e2e_speedup, 5000.0);
}

TEST(IncrementalTest, MoreAcceleratorsNeverHurtOnChip) {
  Workload base = DatabaseLike();
  auto rows = IncrementalAccelerationStudy(base, 8.0, 0.0);
  ASSERT_EQ(rows.size(), base.components.size());
  // Config order: sync+off, sync+on, async+on, chained+on.
  for (size_t c = 1; c < 4; ++c) {
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_GE(rows[i].speedup_by_config[c],
                rows[i - 1].speedup_by_config[c] - 1e-12)
          << "config " << c << " row " << i;
    }
  }
}

TEST(IncrementalTest, OnChipBeatsOffChipAndAsyncBeatsSync) {
  Workload base = DatabaseLike();
  auto rows = IncrementalAccelerationStudy(base, 8.0, 32 << 10);
  for (const auto& row : rows) {
    EXPECT_GE(row.speedup_by_config[1], row.speedup_by_config[0] - 1e-12);
    EXPECT_GE(row.speedup_by_config[2], row.speedup_by_config[1] - 1e-12);
    // Chained is within (0, async] and >= sync.
    EXPECT_GE(row.speedup_by_config[3], row.speedup_by_config[1] - 1e-12);
    EXPECT_LE(row.speedup_by_config[3], row.speedup_by_config[2] + 1e-12);
  }
}

TEST(IncrementalTest, LargePayloadsMakeOffChipASlowdown) {
  // The BigQuery effect: off-chip transfer of large payloads swamps the
  // acceleration benefit, pushing end-to-end speedup below 1.
  Workload base = DatabaseLike();
  auto rows = IncrementalAccelerationStudy(base, 8.0, 64.0 * (1 << 20));
  EXPECT_LT(rows.back().speedup_by_config[0], 1.0);
  EXPECT_GT(rows.back().speedup_by_config[1], 1.0);
}

TEST(SetupSweepTest, LargerSetupNeverFaster) {
  Workload base = DatabaseLike();
  auto rows = SetupTimeSweep(base, {0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}, 8.0,
                             0.0);
  ASSERT_EQ(rows.size(), 6u);
  for (size_t c = 0; c < 4; ++c) {
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LE(rows[i].speedup_by_config[c],
                rows[i - 1].speedup_by_config[c] + 1e-12);
    }
  }
}

TEST(SetupSweepTest, AsynchronousHidesSetupBetterThanSync) {
  Workload base = DatabaseLike();
  auto rows = SetupTimeSweep(base, {1e-4}, 8.0, 0.0);
  // sync+on-chip (index 1) suffers the setup on every component serially;
  // async (2) pays only the largest.
  EXPECT_GT(rows[0].speedup_by_config[2], rows[0].speedup_by_config[1]);
}

TEST(SetupSweepTest, ChainedAmortizesSetupAcrossChain) {
  Workload base = DatabaseLike();
  auto rows = SetupTimeSweep(base, {1e-3}, 8.0, 0.0);
  EXPECT_GT(rows[0].speedup_by_config[3], rows[0].speedup_by_config[1]);
}

TEST(PriorStudyTest, SetIncludesPaperAccelerators) {
  auto set = PriorAcceleratorSet();
  bool has_malloc = false, has_protobuf = false, has_compression = false,
       has_rpc = false;
  for (const auto& accelerator : set) {
    if (accelerator.component_name == "Mem. Allocation") has_malloc = true;
    if (accelerator.component_name == "Protobuf") has_protobuf = true;
    if (accelerator.component_name == "Compression") has_compression = true;
    if (accelerator.component_name == "RPC") has_rpc = true;
  }
  EXPECT_TRUE(has_malloc);
  EXPECT_TRUE(has_protobuf);
  EXPECT_TRUE(has_compression);
  EXPECT_TRUE(has_rpc);
}

TEST(PriorStudyTest, CombinedBeatsEveryIndividual) {
  Workload base = DatabaseLike();
  // Rename components to match published accelerator targets.
  base.components[5].name = "Mem. Allocation";
  auto rows = PriorAcceleratorStudy(base, PriorAcceleratorSet());
  ASSERT_GE(rows.size(), 2u);
  const auto& combined = rows.back();
  EXPECT_EQ(combined.label, "Combined");
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_GE(combined.sync_speedup, rows[i].sync_speedup - 1e-12);
  }
}

TEST(PriorStudyTest, ChainedLimitedByWeakestAccelerator) {
  // With Mallacc's small speedup in the chain, chained gains over sync
  // are limited (the paper's observation in Section 6.3.4).
  Workload base;
  base.t_cpu = 10e-3;
  base.t_dep = 0;
  base.f = 1.0;
  for (const char* name : {"Compression", "Protobuf", "Mem. Allocation"}) {
    Component component;
    component.name = name;
    component.t_sub = 3e-3;
    base.components.push_back(component);
  }
  auto rows = PriorAcceleratorStudy(base, PriorAcceleratorSet());
  const auto& combined = rows.back();
  // Chained time bounded below by mem-alloc at 1.5x: 2ms of 10ms.
  EXPECT_LT(combined.chained_speedup / combined.sync_speedup, 1.6);
  EXPECT_GE(combined.chained_speedup, combined.sync_speedup - 1e-12);
}

}  // namespace
}  // namespace hyperprof::model
