// Small-N recovery of the paper's headline tables, with the documented
// tolerances (EXPERIMENTS.md): Table 1 storage ratios within 35% relative,
// Table 6 IPC/MPKI near the published per-platform values, and Table 8
// chained-accelerator validation within the model-tracking band. Tagged
// `slow` in ctest: it performs real fleet and SoC runs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/accel_model.h"
#include "platforms/fleet.h"
#include "platforms/platforms.h"
#include "soc/chained_soc.h"
#include "soc/host_pipeline.h"
#include "storage/provisioning.h"

namespace hyperprof {
namespace {

// Relative closeness helper: |got - want| / want <= tol.
::testing::AssertionResult Within(double got, double want, double tol) {
  double rel = std::fabs(got - want) / want;
  if (rel <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "got " << got << ", want " << want << " (+/-" << tol * 100
         << "%), off by " << rel * 100 << "%";
}

// --- Table 1: storage-to-storage ratios ---------------------------------

struct Table1Row {
  storage::StorageProfile profile;
  double paper_ssd_per_ram;
  double paper_hdd_per_ram;
};

TEST(PaperRecovery, Table1StorageRatios) {
  // Paper Table 1: RAM : SSD : HDD of 1:16:164 (Spanner), 1:7:777
  // (BigTable), 1:8:90 (BigQuery). The capacity-planning model recovers
  // these within 35% relative (EXPERIMENTS.md).
  const Table1Row rows[] = {
      {platforms::SpannerStorageProfile(), 16, 164},
      {platforms::BigTableStorageProfile(), 7, 777},
      {platforms::BigQueryStorageProfile(), 8, 90},
  };
  for (const auto& row : rows) {
    storage::TierSizes sizes = storage::ProvisionForProfile(row.profile);
    EXPECT_GT(sizes.ram_bytes, 0) << row.profile.platform;
    EXPECT_TRUE(Within(sizes.SsdPerRam(), row.paper_ssd_per_ram, 0.35))
        << row.profile.platform << " SSD:RAM";
    EXPECT_TRUE(Within(sizes.HddPerRam(), row.paper_hdd_per_ram, 0.35))
        << row.profile.platform << " HDD:RAM";
    // Tiering sanity: each colder tier is strictly larger.
    EXPECT_GT(sizes.ssd_bytes, sizes.ram_bytes) << row.profile.platform;
    EXPECT_GT(sizes.hdd_bytes, sizes.ssd_bytes) << row.profile.platform;
  }
}

// --- Table 6: IPC and MPKI ----------------------------------------------

class SmallFleetTest : public ::testing::Test {
 protected:
  // One small-N fleet run shared by the Table 6 assertions: 2000 queries
  // per platform is enough for the PMU synthesis to concentrate near its
  // per-category targets.
  static void SetUpTestSuite() {
    platforms::FleetConfig config;
    config.queries_per_platform = 2000;
    config.trace_sample_one_in = 10;
    fleet_ = new platforms::FleetSimulation(config);
    fleet_->AddDefaultPlatforms();
    fleet_->RunAll();
  }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }
  static platforms::FleetSimulation* fleet_;
};

platforms::FleetSimulation* SmallFleetTest::fleet_ = nullptr;

TEST_F(SmallFleetTest, Table6IpcAndMpki) {
  // Paper Table 6 per-platform means: IPC 0.7 / 0.7 / 1.2, branch MPKI
  // 5.5 / 6.2 / 3.5, L1I MPKI 19.0 / 18.2 / 11.3. The recovered values
  // are cycle-weighted compositions of the Table 7 per-category ground
  // truth, so they track the paper loosely (20%) rather than exactly.
  struct Row {
    const char* name;
    double ipc, br, l1i;
  };
  const Row rows[] = {
      {"Spanner", 0.7, 5.5, 19.0},
      {"BigTable", 0.7, 6.2, 18.2},
      {"BigQuery", 1.2, 3.5, 11.3},
  };
  for (size_t p = 0; p < 3; ++p) {
    auto result = fleet_->Result(p);
    ASSERT_EQ(result.name, rows[p].name);
    const auto& rollup = result.microarch.overall;
    EXPECT_TRUE(Within(rollup.Ipc(), rows[p].ipc, 0.20))
        << rows[p].name << " IPC";
    EXPECT_TRUE(Within(rollup.BrMpki(), rows[p].br, 0.20))
        << rows[p].name << " BR MPKI";
    EXPECT_TRUE(Within(rollup.L1iMpki(), rows[p].l1i, 0.20))
        << rows[p].name << " L1I MPKI";
    // Orderings the paper calls out: BigQuery (analytics) runs at higher
    // IPC and lower front-end miss rates than the two serving platforms.
    EXPECT_GT(rollup.Ipc(), 0);
    EXPECT_GT(rollup.LlcMpki(), 0);
  }
  auto spanner = fleet_->Result(0).microarch.overall;
  auto bigquery = fleet_->Result(2).microarch.overall;
  EXPECT_GT(bigquery.Ipc(), spanner.Ipc());
  EXPECT_LT(bigquery.L1iMpki(), spanner.L1iMpki());
}

// --- Table 8: chained-accelerator model validation ----------------------

TEST(PaperRecovery, Table8SimulatedSocValidation) {
  // Part 1 of the Table 8 reproduction: replay the FireSim experiment on
  // the event-driven SoC simulator and compare measured chained execution
  // against the analytical model (Eq. 9-12). The paper reports a 6.1%
  // model difference; the reproduction must stay within the documented
  // ~15% tracking band.
  Rng rng(7);
  soc::MessageBatch batch = soc::MessageBatch::Synthetic(200, 2048, rng);
  soc::SocConfig config =
      soc::SocConfig::CalibratedTo(batch.TotalBytes(), batch.size());
  soc::ChainedSocSim sim(config);
  auto unaccel = sim.RunUnaccelerated(batch);
  auto chained = sim.RunChained(batch);

  // Chaining must actually help, and the calibrated sub-task times must
  // match the published RTL measurements to first order.
  EXPECT_LT(chained.total.ToSeconds(), unaccel.total.ToSeconds());
  EXPECT_TRUE(Within(unaccel.serialize_time.ToSeconds(), 518.3e-6, 0.15));
  EXPECT_TRUE(Within(unaccel.hash_time.ToSeconds(), 1112.5e-6, 0.15));

  model::Workload workload;
  workload.t_cpu = unaccel.total.ToSeconds();
  workload.t_dep = 0;
  workload.f = 1.0;
  model::Component serialize;
  serialize.name = "Proto. Ser.";
  serialize.t_sub = unaccel.serialize_time.ToSeconds();
  serialize.speedup = config.serialize_speedup;
  serialize.t_setup = config.serialize_setup.ToSeconds();
  serialize.chained = true;
  model::Component hash;
  hash.name = "SHA3";
  hash.t_sub = unaccel.hash_time.ToSeconds();
  hash.speedup = config.hash_speedup;
  hash.t_setup = config.hash_setup.ToSeconds();
  hash.chained = true;
  workload.components = {serialize, hash};
  double modeled = model::AccelModel(workload).AcceleratedE2e();
  double measured = chained.total.ToSeconds();
  ASSERT_GT(modeled, 0);
  EXPECT_LT(std::fabs(modeled - measured) / modeled, 0.15)
      << "modeled " << modeled << "s vs measured " << measured << "s";
}

TEST(PaperRecovery, Table8HostKernelValidation) {
  // Part 2: real serialization chained into real SHA3 across two host
  // threads. Wall-clock on shared CI machines is noisy, so the error
  // bound is deliberately loose; the output-consistency check is exact.
  auto host = soc::RunHostValidation(200, /*seed=*/11);
  EXPECT_EQ(host.num_messages, 200u);
  EXPECT_GT(host.total_wire_bytes, 0u);
  EXPECT_EQ(host.digest_xor, 0u) << "serial and chained outputs diverged";
  EXPECT_GT(host.chained_total_seconds, 0);
  EXPECT_GT(host.modeled_chained_seconds, 0);
  EXPECT_LT(host.ModelErrorFraction(), 0.9);
}

}  // namespace
}  // namespace hyperprof
