#include "core/platform_inputs.h"

#include <gtest/gtest.h>

namespace hyperprof::model {
namespace {

using profiling::FnCategory;

TEST(CategorySelectionTest, SharedTaxesAlwaysIncluded) {
  for (const char* platform : {"Spanner", "BigTable", "BigQuery"}) {
    auto categories = AcceleratedCategoriesFor(platform);
    EXPECT_NE(std::find(categories.begin(), categories.end(),
                        FnCategory::kCompression),
              categories.end());
    EXPECT_NE(std::find(categories.begin(), categories.end(),
                        FnCategory::kRpc),
              categories.end());
    EXPECT_NE(std::find(categories.begin(), categories.end(),
                        FnCategory::kProtobuf),
              categories.end());
    EXPECT_NE(
        std::find(categories.begin(), categories.end(), FnCategory::kStl),
        categories.end());
    EXPECT_NE(std::find(categories.begin(), categories.end(),
                        FnCategory::kOperatingSystems),
              categories.end());
  }
}

TEST(CategorySelectionTest, PlatformSpecificCoreCompute) {
  auto database = AcceleratedCategoriesFor("Spanner");
  EXPECT_NE(std::find(database.begin(), database.end(), FnCategory::kRead),
            database.end());
  EXPECT_EQ(
      std::find(database.begin(), database.end(), FnCategory::kFilter),
      database.end());
  auto analytics = AcceleratedCategoriesFor("BigQuery");
  EXPECT_NE(
      std::find(analytics.begin(), analytics.end(), FnCategory::kFilter),
      analytics.end());
  EXPECT_EQ(
      std::find(analytics.begin(), analytics.end(), FnCategory::kRead),
      analytics.end());
}

TEST(PriorStudyCategoriesTest, IncludesMemAllocationNotStl) {
  auto categories = PriorStudyCategoriesFor("Spanner");
  EXPECT_NE(std::find(categories.begin(), categories.end(),
                      FnCategory::kMemAllocation),
            categories.end());
  EXPECT_EQ(std::find(categories.begin(), categories.end(),
                      FnCategory::kStl),
            categories.end());
}

/** Builds a synthetic PlatformResult with known shares. */
platforms::PlatformResult FakeResult() {
  platforms::PlatformResult result;
  result.name = "Spanner";
  result.e2e.overall.time.cpu = 6.0;
  result.e2e.overall.time.io = 3.0;
  result.e2e.overall.time.remote = 1.0;
  result.e2e.overall.query_count = 100;
  // Groups: put everything in CPU heavy for simplicity.
  result.e2e.groups[0].time = result.e2e.overall.time;
  result.e2e.groups[0].query_count = 100;
  // Cycle breakdown: compression 10%, rpc 20%, rest uncategorized.
  result.cycles.cycles_by_category[static_cast<size_t>(
      FnCategory::kCompression)] = 10;
  result.cycles
      .cycles_by_category[static_cast<size_t>(FnCategory::kRpc)] = 20;
  result.cycles.cycles_by_category[static_cast<size_t>(
      FnCategory::kUncategorizedCore)] = 70;
  return result;
}

TEST(BuildModelInputTest, ComponentTimesFollowCycleShares) {
  auto result = FakeResult();
  PlatformModelInput input = BuildModelInput(result, {}, 1024);
  EXPECT_EQ(input.platform, "Spanner");
  // Per-query averages: 6s CPU / 4s dep over 100 queries.
  EXPECT_DOUBLE_EQ(input.overall.t_cpu, 0.06);
  EXPECT_DOUBLE_EQ(input.overall.t_dep, 0.04);
  double compression_t = -1, rpc_t = -1;
  for (const auto& component : input.overall.components) {
    if (component.name == std::string("Compression")) {
      compression_t = component.t_sub;
    }
    if (component.name == std::string("RPC")) rpc_t = component.t_sub;
  }
  EXPECT_NEAR(compression_t, 0.006, 1e-9);  // 10% of the 60ms average
  EXPECT_NEAR(rpc_t, 0.012, 1e-9);
}

TEST(BuildModelInputTest, GroupWorkloadsArePerQueryAverages) {
  auto result = FakeResult();
  PlatformModelInput input = BuildModelInput(result, {}, 1024);
  EXPECT_NEAR(input.by_group[0].t_cpu, 0.06, 1e-9);  // 6s / 100 queries
  EXPECT_DOUBLE_EQ(input.group_query_share[0], 1.0);
  EXPECT_DOUBLE_EQ(input.group_query_share[1], 0.0);
}

TEST(BuildModelInputTest, NoTracesGivesFOne) {
  auto result = FakeResult();
  PlatformModelInput input = BuildModelInput(result, {}, 1024);
  EXPECT_DOUBLE_EQ(input.overall.f, 1.0);
}

TEST(BuildWorkloadForCategoriesTest, RestrictsComponentSet) {
  auto result = FakeResult();
  Workload workload = BuildWorkloadForCategories(
      result, {}, {FnCategory::kCompression});
  ASSERT_EQ(workload.components.size(), 1u);
  EXPECT_EQ(workload.components[0].name, "Compression");
  EXPECT_NEAR(workload.UnacceleratedCpuTime(), 0.054, 1e-9);
}

}  // namespace
}  // namespace hyperprof::model
