// End-to-end reproduction shape tests: run the fleet characterization,
// derive model inputs from the *measured* profiles, and assert the
// paper's headline qualitative results (who wins, by roughly what factor,
// where the crossovers fall) — the contract of this reproduction.

#include <gtest/gtest.h>

#include "core/configs.h"
#include "core/limit_studies.h"
#include "core/platform_inputs.h"
#include "platforms/fleet.h"

namespace hyperprof::model {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    platforms::FleetConfig config;
    config.queries_per_platform = 4000;
    config.trace_sample_one_in = 10;
    fleet_ = new platforms::FleetSimulation(config);
    fleet_->AddDefaultPlatforms();
    fleet_->RunAll();
  }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }

  static PlatformModelInput Input(size_t index) {
    auto result = fleet_->Result(index);
    return BuildModelInput(result, fleet_->TracesOf(index), 0);
  }

  static double GroupMeanSpeedup(size_t index, double factor,
                                 const AccelSystemConfig& config,
                                 double offload_bytes) {
    auto result = fleet_->Result(index);
    auto groups = BuildGroupWorkloads(
        result, fleet_->TracesOf(index),
        AcceleratedCategoriesFor(result.name));
    return GroupWeightedSpeedup(groups, [&](const Workload& base) {
      Workload workload = base;
      ApplyConfig(workload, config, offload_bytes);
      for (auto& component : workload.components) {
        component.speedup = factor;
      }
      return AccelModel(workload).Speedup();
    });
  }

  static platforms::FleetSimulation* fleet_;
};

platforms::FleetSimulation* ReproductionTest::fleet_ = nullptr;

TEST_F(ReproductionTest, Fig9WithoutDepsBigTableDominatesByOrders) {
  // Paper: 9.1x / 3,223.6x / 8.5x at 64x — BigTable's remote-dominated
  // average yields a bound orders of magnitude above the other two.
  double bounds[3];
  for (size_t p = 0; p < 3; ++p) {
    auto curve = UniformSpeedupSweep(Input(p).overall, {64.0},
                                     /*remove_dep=*/true);
    bounds[p] = curve[0].e2e_speedup;
  }
  EXPECT_GT(bounds[1], 100 * bounds[0]);  // BigTable >> Spanner
  EXPECT_GT(bounds[1], 100 * bounds[2]);  // BigTable >> BigQuery
  EXPECT_GT(bounds[0], 3.0);              // databases: single digits
  EXPECT_LT(bounds[0], 20.0);
  EXPECT_GT(bounds[2], 3.0);
  EXPECT_LT(bounds[2], 30.0);
}

TEST_F(ReproductionTest, Fig9WithDepsNearPaperValues) {
  // Paper: 2.0x / 2.2x / 1.4x at 64x.
  double expected[3] = {2.0, 2.2, 1.4};
  for (size_t p = 0; p < 3; ++p) {
    double speedup = GroupMeanSpeedup(
        p, 64.0, AccelSystemConfig::SyncOnChip(), 0);
    EXPECT_NEAR(speedup, expected[p], 0.45) << p;
  }
}

TEST_F(ReproductionTest, Fig13InvocationOrderingHolds) {
  // Sync+off-chip <= sync+on-chip <= chained <= async, everywhere.
  for (size_t p = 0; p < 3; ++p) {
    double offload = p == 2 ? 64.0 * (1 << 20) : 32.0 * (1 << 10);
    double off = GroupMeanSpeedup(p, 8.0, AccelSystemConfig::SyncOffChip(),
                                  offload);
    double on =
        GroupMeanSpeedup(p, 8.0, AccelSystemConfig::SyncOnChip(), offload);
    double chained = GroupMeanSpeedup(
        p, 8.0, AccelSystemConfig::ChainedOnChip(), offload);
    double async = GroupMeanSpeedup(
        p, 8.0, AccelSystemConfig::AsyncOnChip(), offload);
    EXPECT_LE(off, on + 1e-9) << p;
    EXPECT_LE(on, chained + 1e-9) << p;
    EXPECT_LE(chained, async + 1e-9) << p;
    // Paper: chaining recovers nearly all of the asynchronous benefit.
    EXPECT_NEAR(chained / async, 1.0, 0.01) << p;
  }
}

TEST_F(ReproductionTest, Fig13BigQueryOffChipIsASlowdown) {
  // Paper: BigQuery's large payloads make off-chip acceleration a net
  // slowdown while on-chip still helps.
  double off = GroupMeanSpeedup(2, 8.0, AccelSystemConfig::SyncOffChip(),
                                64.0 * (1 << 20));
  double on = GroupMeanSpeedup(2, 8.0, AccelSystemConfig::SyncOnChip(),
                               64.0 * (1 << 20));
  EXPECT_LT(off, 1.0);
  EXPECT_GT(on, 1.0);
  // The databases' small payloads keep off-chip close to on-chip
  // (paper: ~1.04x apart).
  double db_off = GroupMeanSpeedup(
      0, 8.0, AccelSystemConfig::SyncOffChip(), 32.0 * (1 << 10));
  double db_on = GroupMeanSpeedup(0, 8.0, AccelSystemConfig::SyncOnChip(),
                                  32.0 * (1 << 10));
  EXPECT_NEAR(db_on / db_off, 1.05, 0.1);
}

TEST_F(ReproductionTest, Fig14SetupHurtsSyncBeforeChained) {
  // At 100us setup, sync degrades visibly while chained barely moves.
  for (size_t p = 0; p < 2; ++p) {  // databases
    AccelSystemConfig sync = AccelSystemConfig::SyncOnChip();
    AccelSystemConfig chained = AccelSystemConfig::ChainedOnChip();
    double sync_clean = GroupMeanSpeedup(p, 8.0, sync, 0);
    sync.setup_time = 100e-6;
    chained.setup_time = 100e-6;
    double sync_dirty = GroupMeanSpeedup(p, 8.0, sync, 0);
    double chained_dirty = GroupMeanSpeedup(p, 8.0, chained, 0);
    EXPECT_LT(sync_dirty, 0.85 * sync_clean) << p;
    EXPECT_GT(chained_dirty, sync_dirty) << p;
  }
}

TEST_F(ReproductionTest, Fig15CombinedInPaperRange) {
  // Paper: holistic synchronous acceleration with published accelerators
  // yields 1.5-1.7x; our databases land in/near that band.
  for (size_t p = 0; p < 2; ++p) {
    auto result = fleet_->Result(p);
    auto groups = BuildGroupWorkloads(
        result, fleet_->TracesOf(p),
        PriorStudyCategoriesFor(result.name));
    auto accelerators = PriorAcceleratorSet();
    double combined = GroupWeightedSpeedup(
        groups, [&](const Workload& base) {
          Workload workload = base;
          std::vector<Component> kept;
          for (const auto& component : workload.components) {
            for (const auto& accelerator : accelerators) {
              if (component.name == accelerator.component_name) {
                Component configured = component;
                configured.speedup = accelerator.speedup;
                kept.push_back(configured);
                break;
              }
            }
          }
          workload.components = std::move(kept);
          return AccelModel(workload).Speedup();
        });
    EXPECT_GT(combined, 1.35) << p;
    EXPECT_LT(combined, 1.85) << p;
  }
}

}  // namespace
}  // namespace hyperprof::model
