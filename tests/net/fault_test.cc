#include "net/fault.h"

#include <gtest/gtest.h>

#include "net/rpc.h"
#include "sim/simulator.h"

namespace hyperprof::net {
namespace {

/**
 * One self-contained substrate (simulator + network + rpc + fault model)
 * so determinism tests can stand up two identical stacks and compare
 * bit-for-bit.
 */
struct Stack {
  explicit Stack(uint64_t seed = 1, uint64_t fault_seed = 77)
      : rpc(&simulator, &network, Rng(seed)), faults(Rng(fault_seed)) {
    rpc.set_fault_model(&faults);
  }

  sim::Simulator simulator;
  NetworkModel network;
  RpcSystem rpc;
  FaultModel faults;
  NodeId client{0, 0, 0};
  NodeId server{0, 0, 1};
};

FaultSpec DropAll() {
  FaultSpec spec;
  spec.drop_probability = 1.0;
  return spec;
}

FaultSpec ErrorAll() {
  FaultSpec spec;
  spec.error_probability = 1.0;
  return spec;
}

TEST(FaultModelTest, UnarmedByDefault) {
  FaultModel model(Rng(7));
  EXPECT_FALSE(model.armed());
  model.set_default_faults(FaultSpec{});  // all-zero spec stays unarmed
  EXPECT_FALSE(model.armed());
}

TEST(FaultModelTest, ArmedByAnyFaultSource) {
  FaultModel by_default(Rng(7));
  by_default.set_default_faults(DropAll());
  EXPECT_TRUE(by_default.armed());

  FaultModel by_method(Rng(7));
  by_method.SetMethodFaults("dfs.Read", ErrorAll());
  EXPECT_TRUE(by_method.armed());

  FaultModel by_outage(Rng(7));
  by_outage.AddOutage(
      {NodeId{0, 0, 1}, SimTime::Zero(), SimTime::FromSeconds(1)});
  EXPECT_TRUE(by_outage.armed());
}

TEST(FaultModelTest, DecisionPartitionIsExhaustiveAndCounted) {
  FaultModel model(Rng(7));
  FaultSpec spec;
  spec.drop_probability = 0.2;
  spec.error_probability = 0.2;
  spec.slowdown_probability = 0.2;
  model.set_default_faults(spec);
  for (int i = 0; i < 10000; ++i) {
    model.Decide("m", NodeId{0, 0, 1}, SimTime::Zero());
  }
  EXPECT_EQ(model.decisions(), 10000u);
  EXPECT_EQ(model.injected_total(), model.injected_drops() +
                                        model.injected_errors() +
                                        model.injected_slowdowns());
  // Each branch should land near its 20% mass.
  EXPECT_NEAR(model.injected_drops() / 10000.0, 0.2, 0.02);
  EXPECT_NEAR(model.injected_errors() / 10000.0, 0.2, 0.02);
  EXPECT_NEAR(model.injected_slowdowns() / 10000.0, 0.2, 0.02);
}

TEST(FaultModelTest, MethodOverrideBeatsDefault) {
  FaultModel model(Rng(7));
  model.set_default_faults(DropAll());
  model.SetMethodFaults("safe.Method", FaultSpec{});
  FaultDecision hit = model.Decide("other", NodeId{0, 0, 1}, SimTime::Zero());
  FaultDecision safe =
      model.Decide("safe.Method", NodeId{0, 0, 1}, SimTime::Zero());
  EXPECT_EQ(hit.kind, FaultDecision::Kind::kDrop);
  EXPECT_EQ(safe.kind, FaultDecision::Kind::kNone);
}

TEST(FaultModelTest, OutageWindowIsDeterministicAndBounded) {
  FaultModel model(Rng(7));
  NodeId node{0, 0, 3};
  model.AddOutage({node, SimTime::FromSeconds(1), SimTime::FromSeconds(2)});
  EXPECT_EQ(model.Decide("m", node, SimTime::FromSeconds(0.5)).kind,
            FaultDecision::Kind::kNone);
  EXPECT_EQ(model.Decide("m", node, SimTime::FromSeconds(1.5)).kind,
            FaultDecision::Kind::kError);
  EXPECT_EQ(model.Decide("m", node, SimTime::FromSeconds(2.0)).kind,
            FaultDecision::Kind::kNone);  // end is exclusive
  // A different node inside the window is unaffected.
  EXPECT_EQ(model.Decide("m", NodeId{0, 0, 4},
                         SimTime::FromSeconds(1.5)).kind,
            FaultDecision::Kind::kNone);
  EXPECT_EQ(model.outage_hits(), 1u);
}

TEST(FaultRpcTest, PlainCallSurvivesDropWithoutHanging) {
  Stack stack;
  stack.faults.set_default_faults(DropAll());
  int completions = 0;
  Status status;
  stack.rpc.Call(
      stack.client, stack.server, RpcOptions{},
      [](std::function<void()> respond) { respond(); },
      [&](const RpcResult& result) {
        ++completions;
        status = result.status;
      });
  stack.simulator.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(stack.rpc.failed_calls(), 1u);
  EXPECT_EQ(stack.rpc.completed_calls(), 0u);
}

TEST(FaultRpcTest, TimeoutFiresExactlyOnce) {
  Stack stack;
  stack.faults.set_default_faults(DropAll());
  RpcCallPolicy policy;
  policy.timeout = SimTime::Millis(5);
  policy.max_attempts = 1;
  int completions = 0;
  RpcOutcome outcome;
  stack.rpc.CallFixedWithPolicy(stack.client, stack.server, RpcOptions{},
                                policy, SimTime::Zero(),
                                [&](const RpcOutcome& o) {
                                  ++completions;
                                  outcome = o;
                                });
  stack.simulator.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(stack.rpc.timeouts_fired(), 1u);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.failures, 1u);
  EXPECT_EQ(outcome.wasted_time, SimTime::Millis(5));
  EXPECT_FALSE(outcome.ToStatusOr().ok());
}

TEST(FaultRpcTest, RetriesExhaustDeterministically) {
  auto run_once = []() {
    Stack stack;
    stack.faults.set_default_faults(DropAll());
    RpcCallPolicy policy;
    policy.timeout = SimTime::Millis(5);
    policy.max_attempts = 3;
    policy.backoff_base = SimTime::Millis(1);
    policy.backoff_jitter = 0.5;  // exercises the jitter draw
    SimTime completed_at;
    RpcOutcome outcome;
    stack.rpc.CallFixedWithPolicy(stack.client, stack.server, RpcOptions{},
                                  policy, SimTime::Zero(),
                                  [&](const RpcOutcome& o) {
                                    outcome = o;
                                    completed_at = stack.simulator.Now();
                                  });
    stack.simulator.Run();
    EXPECT_EQ(outcome.attempts, 3u);
    EXPECT_EQ(outcome.failures, 3u);
    EXPECT_EQ(stack.rpc.timeouts_fired(), 3u);
    EXPECT_EQ(stack.rpc.retries_issued(), 2u);
    EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
    return completed_at;
  };
  // Identical seeds -> identical jittered backoff -> identical end time.
  SimTime first = run_once();
  SimTime second = run_once();
  EXPECT_EQ(first, second);
  // Backoff pushed completion past the sum of the three timeouts.
  EXPECT_GT(first, SimTime::Millis(15));
}

TEST(FaultRpcTest, RetrySucceedsAfterTransientError) {
  Stack stack;
  stack.faults.set_default_faults(ErrorAll());
  RpcCallPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base = SimTime::FromSeconds(1);  // retry lands at ~1s
  RpcOutcome outcome;
  int completions = 0;
  // Clear the fault before the retry fires: the transient heals.
  stack.simulator.Schedule(SimTime::FromSeconds(0.5), [&]() {
    stack.faults.set_default_faults(FaultSpec{});
  });
  stack.rpc.CallFixedWithPolicy(stack.client, stack.server, RpcOptions{},
                                policy, SimTime::Micros(100),
                                [&](const RpcOutcome& o) {
                                  ++completions;
                                  outcome = o;
                                });
  stack.simulator.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.failures, 1u);
  EXPECT_EQ(outcome.result.server_time, SimTime::Micros(100));
  EXPECT_TRUE(outcome.ToStatusOr().ok());
  EXPECT_GT(outcome.wasted_time, SimTime::Zero());
}

TEST(FaultRpcTest, HedgedWinnerCancelsLoserWithoutDoubleCompleting) {
  Stack stack;  // no faults armed: hedging against raw server slowness
  RpcCallPolicy policy;
  policy.max_attempts = 2;
  policy.hedge_delay = SimTime::Millis(1);
  int handler_runs = 0;
  int completions = 0;
  RpcOutcome outcome;
  stack.rpc.CallWithPolicy(
      stack.client, stack.server, RpcOptions{}, policy,
      [&](std::function<void()> respond) {
        ++handler_runs;
        // First (primary) execution is a straggler; the hedge is fast.
        SimTime delay = handler_runs == 1 ? SimTime::Millis(100)
                                          : SimTime::Micros(10);
        stack.simulator.Schedule(delay, std::move(respond));
      },
      [&](const RpcOutcome& o) {
        ++completions;
        outcome = o;
      });
  stack.simulator.Run();
  EXPECT_EQ(handler_runs, 2);
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.hedged);
  EXPECT_TRUE(outcome.hedge_won);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.result.server_time, SimTime::Micros(10));
  EXPECT_EQ(stack.rpc.hedges_issued(), 1u);
  EXPECT_EQ(stack.rpc.hedge_wins(), 1u);
  EXPECT_EQ(stack.rpc.cancelled_attempts(), 1u);
  EXPECT_GT(outcome.wasted_time, SimTime::Zero());
  EXPECT_EQ(stack.rpc.wasted_seconds(), outcome.wasted_time.ToSeconds());
}

TEST(FaultRpcTest, HedgeNotIssuedWhenPrimaryWinsFirst) {
  Stack stack;
  RpcCallPolicy policy;
  policy.max_attempts = 2;
  policy.hedge_delay = SimTime::FromSeconds(5);  // far beyond completion
  RpcOutcome outcome;
  stack.rpc.CallFixedWithPolicy(stack.client, stack.server, RpcOptions{},
                                policy, SimTime::Micros(100),
                                [&](const RpcOutcome& o) { outcome = o; });
  stack.simulator.Run();
  EXPECT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.hedged);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(stack.rpc.hedges_issued(), 0u);
  EXPECT_EQ(stack.rpc.cancelled_attempts(), 0u);
  EXPECT_EQ(outcome.wasted_time, SimTime::Zero());
}

TEST(FaultRpcTest, SlowdownDelaysResponseByExactExtra) {
  // Two identical stacks; one injects a fixed 20ms slowdown. The network
  // draws come from the same stream positions, so the totals differ by
  // exactly the injected extra.
  Stack plain;
  Stack slowed;
  FaultSpec slow;
  slow.slowdown_probability = 1.0;
  slow.slowdown_floor = SimTime::Millis(20);
  slow.slowdown_ceil = SimTime::Millis(20);
  slowed.faults.set_default_faults(slow);
  SimTime plain_total, slowed_total;
  plain.rpc.CallFixed(plain.client, plain.server, RpcOptions{},
                      SimTime::Micros(50),
                      [&](const RpcResult& r) { plain_total = r.Total(); });
  slowed.rpc.CallFixed(slowed.client, slowed.server, RpcOptions{},
                       SimTime::Micros(50),
                       [&](const RpcResult& r) { slowed_total = r.Total(); });
  plain.simulator.Run();
  slowed.simulator.Run();
  EXPECT_EQ(slowed_total, plain_total + SimTime::Millis(20));
  EXPECT_EQ(slowed.faults.injected_slowdowns(), 1u);
}

TEST(FaultRpcTest, OutageFailsCallsOnlyInsideWindow) {
  Stack stack;
  stack.faults.AddOutage({stack.server, SimTime::Zero(),
                          SimTime::FromSeconds(1)});
  Status during, after;
  stack.rpc.CallFixed(stack.client, stack.server, RpcOptions{},
                      SimTime::Zero(),
                      [&](const RpcResult& r) { during = r.status; });
  stack.simulator.Schedule(SimTime::FromSeconds(2), [&]() {
    stack.rpc.CallFixed(stack.client, stack.server, RpcOptions{},
                        SimTime::Zero(),
                        [&](const RpcResult& r) { after = r.status; });
  });
  stack.simulator.Run();
  EXPECT_EQ(during.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(stack.faults.outage_hits(), 1u);
}

TEST(FaultRpcTest, PlainPolicyIsBitIdenticalToLegacyCall) {
  // Same seeds, same workload; one goes through Call, the other through
  // CallWithPolicy with the zero policy. Every completion must land at the
  // exact same simulated instant with the exact same timings.
  Stack legacy;
  Stack wrapped;
  std::vector<SimTime> legacy_times, wrapped_times;
  for (int i = 0; i < 20; ++i) {
    legacy.rpc.CallFixed(legacy.client, legacy.server, RpcOptions{},
                         SimTime::Micros(100), [&](const RpcResult& r) {
                           legacy_times.push_back(r.Total());
                         });
    wrapped.rpc.CallFixedWithPolicy(
        wrapped.client, wrapped.server, RpcOptions{}, RpcCallPolicy{},
        SimTime::Micros(100), [&](const RpcOutcome& o) {
          EXPECT_TRUE(o.ok());
          EXPECT_EQ(o.attempts, 1u);
          wrapped_times.push_back(o.result.Total());
        });
  }
  legacy.simulator.Run();
  wrapped.simulator.Run();
  ASSERT_EQ(legacy_times.size(), wrapped_times.size());
  for (size_t i = 0; i < legacy_times.size(); ++i) {
    EXPECT_EQ(legacy_times[i], wrapped_times[i]);
  }
  EXPECT_EQ(legacy.simulator.events_executed(),
            wrapped.simulator.events_executed());
  // The unarmed model was never consulted.
  EXPECT_EQ(legacy.faults.decisions(), 0u);
  EXPECT_EQ(wrapped.faults.decisions(), 0u);
}

TEST(FaultRpcTest, LatencyQuantileGivesHedgeDelayRecipe) {
  Stack stack;
  for (int i = 0; i < 200; ++i) {
    stack.rpc.CallFixed(stack.client, stack.server, RpcOptions{},
                        SimTime::Micros(100), [](const RpcResult&) {});
  }
  stack.simulator.Run();
  SimTime p50 = stack.rpc.LatencyQuantile(0.50);
  SimTime p95 = stack.rpc.LatencyQuantile(0.95);
  EXPECT_GT(p50, SimTime::Zero());
  EXPECT_GE(p95, p50);
}

}  // namespace
}  // namespace hyperprof::net
