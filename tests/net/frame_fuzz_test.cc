// Adversarial fuzzing of the serving frame decoder and the protowire
// request/response parsers: arbitrary chunking must never change what is
// decoded, and corrupt or garbage bytes must be rejected without reading
// past the buffer (ASan enforces the "without" part).

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/frame.h"
#include "serve/protocol.h"

namespace hyperprof::serve {
namespace {

std::vector<uint8_t> RandomPayload(Rng& rng, size_t size) {
  std::vector<uint8_t> payload(size);
  for (auto& byte : payload) byte = static_cast<uint8_t>(rng.Next());
  return payload;
}

/** Encodes `frames` into one contiguous stream. */
std::vector<uint8_t> EncodeStream(
    const std::vector<std::vector<uint8_t>>& frames) {
  std::vector<uint8_t> stream;
  for (const auto& frame : frames) EncodeFrame(frame, stream);
  return stream;
}

TEST(FrameFuzzTest, RandomSplitPointsReassembleIdentically) {
  Rng rng(0x5eedf00d);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t frame_count = 1 + rng.NextBounded(8);
    std::vector<std::vector<uint8_t>> frames;
    for (size_t i = 0; i < frame_count; ++i) {
      frames.push_back(RandomPayload(rng, rng.NextBounded(300)));
    }
    const std::vector<uint8_t> stream = EncodeStream(frames);

    // Feed the stream in random-size chunks, including empty ones.
    FrameDecoder decoder;
    std::vector<std::vector<uint8_t>> decoded;
    std::vector<uint8_t> payload;
    size_t offset = 0;
    while (offset < stream.size()) {
      const size_t chunk = rng.NextBounded(17);
      const size_t take = std::min(chunk, stream.size() - offset);
      decoder.Feed(stream.data() + offset, take);
      offset += take;
      for (;;) {
        const FrameDecoder::Status status = decoder.Next(&payload);
        if (status != FrameDecoder::Status::kFrame) {
          ASSERT_EQ(status, FrameDecoder::Status::kNeedMore);
          break;
        }
        decoded.push_back(payload);
      }
    }
    ASSERT_EQ(decoded, frames);
    EXPECT_FALSE(decoder.HasPartial());
    EXPECT_EQ(decoder.frames_decoded(), frame_count);
  }
}

TEST(FrameFuzzTest, BeginEndFrameIsByteIdenticalToEncodeFrame) {
  Rng rng(0x1de5a3e);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<uint8_t> payload =
        RandomPayload(rng, rng.NextBounded(400));

    std::vector<uint8_t> copied;
    copied.push_back(0xEE);  // both paths must append, not clobber
    EncodeFrame(payload.data(), payload.size(), copied);

    std::vector<uint8_t> in_place;
    in_place.push_back(0xEE);
    const size_t start = BeginFrame(in_place);
    in_place.insert(in_place.end(), payload.begin(), payload.end());
    EndFrame(in_place, start);

    ASSERT_EQ(in_place, copied);
  }
}

TEST(FrameFuzzTest, ZeroCopyPathMatchesFeedAndNext) {
  Rng rng(0x0c0feeb1);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t frame_count = 1 + rng.NextBounded(6);
    std::vector<std::vector<uint8_t>> frames;
    for (size_t i = 0; i < frame_count; ++i) {
      frames.push_back(RandomPayload(rng, rng.NextBounded(300)));
    }
    const std::vector<uint8_t> stream = EncodeStream(frames);

    // Receive directly into WritableSpan/CommitBytes (as the daemon
    // does), drain with NextView: same frames, zero copies.
    FrameDecoder decoder;
    std::vector<std::vector<uint8_t>> decoded;
    size_t offset = 0;
    while (offset < stream.size()) {
      const size_t take =
          std::min<size_t>(1 + rng.NextBounded(23), stream.size() - offset);
      uint8_t* span = decoder.WritableSpan(take);
      ASSERT_NE(span, nullptr);
      std::memcpy(span, stream.data() + offset, take);
      decoder.CommitBytes(take);
      offset += take;
      for (;;) {
        FrameView view;
        const FrameDecoder::Status status = decoder.NextView(&view);
        if (status != FrameDecoder::Status::kFrame) {
          ASSERT_EQ(status, FrameDecoder::Status::kNeedMore);
          break;
        }
        decoded.emplace_back(view.data, view.data + view.size);
      }
    }
    ASSERT_EQ(decoded, frames);
    EXPECT_FALSE(decoder.HasPartial());
    EXPECT_EQ(decoder.bytes_fed(), stream.size());
  }
}

TEST(FrameFuzzTest, WarmedDecoderStopsReallocating) {
  // Identical frames through a warmed buffer: after the first frame has
  // grown the buffer to cover one full frame, further cycles must not
  // reallocate — the property the daemon's serve_allocs counter pins.
  Rng rng(0xa110c);
  const std::vector<uint8_t> payload = RandomPayload(rng, 600);
  std::vector<uint8_t> frame;
  EncodeFrame(payload.data(), payload.size(), frame);

  FrameDecoder decoder;
  std::vector<uint8_t> out;
  decoder.Feed(frame.data(), frame.size());
  ASSERT_EQ(decoder.Next(&out), FrameDecoder::Status::kFrame);
  const uint64_t warm_reallocs = decoder.buffer_reallocs();

  for (int i = 0; i < 64; ++i) {
    uint8_t* span = decoder.WritableSpan(frame.size());
    ASSERT_NE(span, nullptr);
    std::memcpy(span, frame.data(), frame.size());
    decoder.CommitBytes(frame.size());
    FrameView view;
    ASSERT_EQ(decoder.NextView(&view), FrameDecoder::Status::kFrame);
    ASSERT_EQ(view.size, payload.size());
  }
  EXPECT_EQ(decoder.buffer_reallocs(), warm_reallocs);
}

TEST(FrameFuzzTest, SingleBitFlipsNeverYieldAForgedFrame) {
  Rng rng(0xb17f11b5);
  for (int trial = 0; trial < 300; ++trial) {
    const std::vector<uint8_t> payload =
        RandomPayload(rng, 1 + rng.NextBounded(200));
    std::vector<uint8_t> stream;
    EncodeFrame(payload.data(), payload.size(), stream);
    const size_t bit = rng.NextBounded(stream.size() * 8);
    stream[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));

    FrameDecoder decoder;
    decoder.Feed(stream.data(), stream.size());
    std::vector<uint8_t> decoded;
    const FrameDecoder::Status status = decoder.Next(&decoded);
    // A flipped length field may leave the decoder waiting for bytes that
    // never come (kNeedMore) or declare the frame oversized; a flipped
    // payload or checksum byte must fail the CRC. What can never happen is
    // a successfully decoded frame whose payload is not the original.
    if (status == FrameDecoder::Status::kFrame) {
      ADD_FAILURE() << "bit flip at " << bit << " produced a decoded frame";
    } else {
      EXPECT_TRUE(status == FrameDecoder::Status::kNeedMore ||
                  status == FrameDecoder::Status::kBadChecksum ||
                  status == FrameDecoder::Status::kOversized);
    }
  }
}

TEST(FrameFuzzTest, ErrorsAreStickyAcrossFurtherFeeds) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  std::vector<uint8_t> stream;
  EncodeFrame(payload.data(), payload.size(), stream);
  stream[5] ^= 0xff;  // corrupt the payload; CRC must catch it

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::vector<uint8_t> out;
  ASSERT_EQ(decoder.Next(&out), FrameDecoder::Status::kBadChecksum);
  EXPECT_TRUE(decoder.failed());

  // A good frame after the corruption must NOT resurrect the stream: a
  // framing error means the byte boundary itself is untrustworthy.
  std::vector<uint8_t> good;
  EncodeFrame(payload.data(), payload.size(), good);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kBadChecksum);
}

TEST(FrameFuzzTest, OversizedLengthRejectedBeforeBuffering) {
  std::vector<uint8_t> header(4);
  const uint32_t huge = kMaxFramePayload + 1;
  header[0] = static_cast<uint8_t>(huge);
  header[1] = static_cast<uint8_t>(huge >> 8);
  header[2] = static_cast<uint8_t>(huge >> 16);
  header[3] = static_cast<uint8_t>(huge >> 24);

  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  std::vector<uint8_t> out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kOversized);
  EXPECT_TRUE(decoder.failed());
}

TEST(FrameFuzzTest, TruncationIsVisibleNotAccepted) {
  std::vector<uint8_t> payload = {9, 8, 7};
  std::vector<uint8_t> stream;
  EncodeFrame(payload.data(), payload.size(), stream);
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size() - 2);  // drop the CRC tail
  std::vector<uint8_t> out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kNeedMore);
  EXPECT_TRUE(decoder.HasPartial());
  EXPECT_EQ(decoder.frames_decoded(), 0u);
}

TEST(FrameFuzzTest, GarbageBytesNeverCrashTheMessageDecoders) {
  Rng rng(0xdec0de);
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<uint8_t> garbage =
        RandomPayload(rng, rng.NextBounded(64));
    Request request;
    DecodeRequest(garbage.data(), garbage.size(), &request);
    Response response;
    DecodeResponse(garbage.data(), garbage.size(), &response);
    // No assertion on the return value: random bytes may happen to parse
    // as a valid (if meaningless) message. The property under test is
    // bounds safety — ASan/UBSan turn any overread into a hard failure.
  }
}

TEST(FrameFuzzTest, BitFlippedMessagesRoundTripOrFailCleanly) {
  Rng rng(0xf1a6);
  for (int trial = 0; trial < 300; ++trial) {
    Response response;
    response.id = rng.Next();
    response.status = ResponseStatus::kOk;
    response.latency_nanos = rng.Next() >> 20;
    WindowSummary window;
    window.index = static_cast<int64_t>(rng.NextBounded(1000));
    window.queries = rng.NextBounded(500);
    window.latency_p50 = 0.001;
    window.latency_p99 = 0.005;
    response.windows.push_back(window);
    protowire::WireBuffer wire;
    EncodeResponse(response, wire);

    const size_t bit = rng.NextBounded(wire.size() * 8);
    wire[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    Response decoded;
    DecodeResponse(wire.data(), wire.size(), &decoded);  // must not crash
  }
}

}  // namespace
}  // namespace hyperprof::serve
