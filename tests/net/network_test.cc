#include "net/network.h"

#include <gtest/gtest.h>

namespace hyperprof::net {
namespace {

TEST(NetworkTest, PathClassification) {
  NodeId a{0, 0, 0};
  EXPECT_EQ(NetworkModel::Classify(a, NodeId{0, 0, 0}),
            PathClass::kSameHost);
  EXPECT_EQ(NetworkModel::Classify(a, NodeId{0, 0, 1}),
            PathClass::kSameCluster);
  EXPECT_EQ(NetworkModel::Classify(a, NodeId{0, 1, 0}),
            PathClass::kCrossCluster);
  EXPECT_EQ(NetworkModel::Classify(a, NodeId{1, 0, 0}),
            PathClass::kCrossRegion);
}

TEST(NetworkTest, MeanTimeGrowsWithDistance) {
  NetworkModel network;
  NodeId a{0, 0, 0};
  SimTime same_host = network.MeanMessageTime(a, NodeId{0, 0, 0}, 1024);
  SimTime same_cluster = network.MeanMessageTime(a, NodeId{0, 0, 1}, 1024);
  SimTime cross_cluster = network.MeanMessageTime(a, NodeId{0, 1, 0}, 1024);
  SimTime cross_region = network.MeanMessageTime(a, NodeId{1, 0, 0}, 1024);
  EXPECT_LT(same_host, same_cluster);
  EXPECT_LT(same_cluster, cross_cluster);
  EXPECT_LT(cross_cluster, cross_region);
}

TEST(NetworkTest, MeanTimeGrowsWithBytes) {
  NetworkModel network;
  NodeId a{0, 0, 0}, b{0, 0, 1};
  EXPECT_LT(network.MeanMessageTime(a, b, 1024),
            network.MeanMessageTime(a, b, 10 << 20));
}

TEST(NetworkTest, SerializationMatchesBandwidth) {
  NetworkModel network;
  NodeId a{0, 0, 0}, b{0, 0, 1};
  const PathParams& params = network.ParamsFor(PathClass::kSameCluster);
  SimTime base = network.MeanMessageTime(a, b, 0);
  SimTime with_payload = network.MeanMessageTime(a, b, 1 << 20);
  double transfer_s = (with_payload - base).ToSeconds();
  EXPECT_NEAR(transfer_s, (1 << 20) / params.bandwidth_bps, 1e-9);
}

TEST(NetworkTest, JitteredTimesVaryButStayPositive) {
  NetworkModel network;
  NodeId a{0, 0, 0}, b{0, 0, 1};
  Rng rng(3);
  SimTime first = network.MessageTime(a, b, 1024, rng);
  bool varied = false;
  for (int i = 0; i < 50; ++i) {
    SimTime t = network.MessageTime(a, b, 1024, rng);
    EXPECT_GT(t, SimTime::Zero());
    if (t != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(NetworkTest, JitterIsDeterministicGivenSeed) {
  NetworkModel network;
  NodeId a{0, 0, 0}, b{1, 0, 0};
  Rng rng1(9), rng2(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(network.MessageTime(a, b, 4096, rng1),
              network.MessageTime(a, b, 4096, rng2));
  }
}

TEST(NetworkTest, PathClassNames) {
  EXPECT_STREQ(PathClassName(PathClass::kSameHost), "same-host");
  EXPECT_STREQ(PathClassName(PathClass::kCrossRegion), "cross-region");
}

TEST(NodeIdTest, ToStringFormat) {
  EXPECT_EQ((NodeId{1, 2, 3}).ToString(), "r1/c2/h3");
}

}  // namespace
}  // namespace hyperprof::net
