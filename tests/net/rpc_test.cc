#include "net/rpc.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hyperprof::net {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : rpc_(&simulator_, &network_, Rng(1)) {}

  sim::Simulator simulator_;
  NetworkModel network_;
  RpcSystem rpc_;
  NodeId client_{0, 0, 0};
  NodeId server_{0, 0, 1};
};

TEST_F(RpcTest, CompletesWithServerAndNetworkTime) {
  RpcOptions options;
  options.method = "test.Echo";
  options.request_bytes = 1024;
  options.response_bytes = 1024;
  bool completed = false;
  rpc_.CallFixed(client_, server_, options, SimTime::Micros(500),
                 [&](const RpcResult& result) {
                   completed = true;
                   EXPECT_EQ(result.server_time, SimTime::Micros(500));
                   EXPECT_GT(result.network_time, SimTime::Zero());
                   EXPECT_EQ(result.Total(),
                             result.network_time + result.server_time);
                 });
  simulator_.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(rpc_.completed_calls(), 1u);
}

TEST_F(RpcTest, HandlerRunsAtServerAfterTransport) {
  RpcOptions options;
  SimTime handler_at;
  rpc_.Call(
      client_, server_, options,
      [&](std::function<void()> respond) {
        handler_at = simulator_.Now();
        respond();
      },
      [](const RpcResult&) {});
  simulator_.Run();
  EXPECT_GT(handler_at, SimTime::Zero());
}

TEST_F(RpcTest, HandlerCanDoAsynchronousWork) {
  RpcOptions options;
  SimTime completed_at;
  rpc_.Call(
      client_, server_, options,
      [&](std::function<void()> respond) {
        simulator_.Schedule(SimTime::Millis(2), std::move(respond));
      },
      [&](const RpcResult& result) {
        completed_at = simulator_.Now();
        EXPECT_EQ(result.server_time, SimTime::Millis(2));
      });
  simulator_.Run();
  EXPECT_GT(completed_at, SimTime::Millis(2));
}

TEST_F(RpcTest, LatencyHistogramRecordsCalls) {
  RpcOptions options;
  for (int i = 0; i < 10; ++i) {
    rpc_.CallFixed(client_, server_, options, SimTime::Micros(100),
                   [](const RpcResult&) {});
  }
  simulator_.Run();
  EXPECT_EQ(rpc_.latency_histogram().count(), 10u);
  EXPECT_GT(rpc_.latency_histogram().mean(), 100e-6);
}

TEST_F(RpcTest, NestedRpcFromHandler) {
  RpcOptions options;
  NodeId backend{0, 0, 2};
  bool outer_done = false;
  rpc_.Call(
      client_, server_, options,
      [&](std::function<void()> respond) {
        // Server fans out to a backend before responding.
        rpc_.CallFixed(server_, backend, RpcOptions{}, SimTime::Micros(50),
                       [respond = std::move(respond)](const RpcResult&) {
                         respond();
                       });
      },
      [&](const RpcResult& result) {
        outer_done = true;
        EXPECT_GT(result.server_time, SimTime::Micros(50));
      });
  simulator_.Run();
  EXPECT_TRUE(outer_done);
  EXPECT_EQ(rpc_.completed_calls(), 2u);
}

TEST_F(RpcTest, CrossRegionSlowerThanLocal) {
  RpcOptions options;
  SimTime local_total, remote_total;
  rpc_.CallFixed(client_, server_, options, SimTime::Zero(),
                 [&](const RpcResult& r) { local_total = r.Total(); });
  rpc_.CallFixed(client_, NodeId{1, 0, 0}, options, SimTime::Zero(),
                 [&](const RpcResult& r) { remote_total = r.Total(); });
  simulator_.Run();
  EXPECT_GT(remote_total, local_total * 10);
}

}  // namespace
}  // namespace hyperprof::net
