#include "platforms/engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "profiling/aggregate.h"

namespace hyperprof::platforms {
namespace {

/** Minimal substrate wired for a single engine. */
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : rpc_(&simulator_, &network_, Rng(2)),
        dfs_(&simulator_, &rpc_, storage::DfsParams(), Rng(3)),
        tracer_(1, Rng(4)),  // trace everything
        profiler_(SimTime::Micros(200), 3e9, Rng(5)),
        registry_(profiling::BuildFleetRegistry()) {}

  EngineContext Context() {
    EngineContext context;
    context.simulator = &simulator_;
    context.dfs = &dfs_;
    context.rpc = &rpc_;
    context.tracer = &tracer_;
    context.profiler = &profiler_;
    context.registry = &registry_;
    return context;
  }

  /** A simple spec with one deterministic-ish query type. */
  PlatformSpec SimpleSpec() {
    PlatformSpec spec;
    spec.name = "Test";
    spec.compute_mix[static_cast<size_t>(profiling::FnCategory::kRead)] =
        1.0;
    spec.microarch[0].ipc = 1.0;
    spec.microarch[1].ipc = 1.0;
    spec.microarch[2].ipc = 1.0;
    spec.block_space = 1024;
    QueryTypeSpec type;
    type.name = "q";
    type.weight = 1.0;
    type.phases.push_back(PhaseSpec::Compute(0.001, 0.1));
    IoPhaseSpec io;
    io.num_blocks = 2;
    type.phases.push_back(PhaseSpec::Io(io));
    RemotePhaseSpec remote;
    remote.fanout = 2;
    remote.server_seconds_mean = 0.0005;
    type.phases.push_back(PhaseSpec::Remote(remote));
    spec.query_types.push_back(std::move(type));
    return spec;
  }

  sim::Simulator simulator_;
  net::NetworkModel network_;
  net::RpcSystem rpc_;
  storage::DistributedFileSystem dfs_;
  profiling::Tracer tracer_;
  profiling::CpuProfiler profiler_;
  profiling::FunctionRegistry registry_;
};

TEST_F(EngineTest, CompletesAllQueries) {
  PlatformEngine engine(Context(), SimpleSpec(), Rng(7));
  bool all_done = false;
  engine.Run(50, 1000.0, [&] { all_done = true; });
  simulator_.Run();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(engine.queries_completed(), 50u);
}

TEST_F(EngineTest, EveryTraceHasAllPhaseKinds) {
  PlatformEngine engine(Context(), SimpleSpec(), Rng(7));
  engine.Run(20, 1000.0, [] {});
  simulator_.Run();
  ASSERT_EQ(tracer_.traces().size(), 20u);
  for (const auto& trace : tracer_.traces()) {
    bool has_cpu = false, has_io = false, has_remote = false;
    for (const auto& span : trace.spans) {
      switch (span.kind) {
        case profiling::SpanKind::kCpu: has_cpu = true; break;
        case profiling::SpanKind::kIo: has_io = true; break;
        case profiling::SpanKind::kRemoteWork: has_remote = true; break;
      }
      EXPECT_GE(span.start, trace.start);
      EXPECT_LE(span.end, trace.end);
    }
    EXPECT_TRUE(has_cpu);
    EXPECT_TRUE(has_io);
    EXPECT_TRUE(has_remote);
  }
}

TEST_F(EngineTest, SpansAreSequentialForSerialPhases) {
  PlatformEngine engine(Context(), SimpleSpec(), Rng(7));
  engine.Run(5, 1000.0, [] {});
  simulator_.Run();
  for (const auto& trace : tracer_.traces()) {
    // Compute span ends before the remote span starts (IO in between).
    SimTime compute_end, remote_start;
    for (const auto& span : trace.spans) {
      if (span.kind == profiling::SpanKind::kCpu) compute_end = span.end;
      if (span.kind == profiling::SpanKind::kRemoteWork) {
        remote_start = span.start;
      }
    }
    EXPECT_LE(compute_end, remote_start);
  }
}

TEST_F(EngineTest, ProfilerReceivesComputeActivities) {
  PlatformEngine engine(Context(), SimpleSpec(), Rng(7));
  engine.Run(50, 1000.0, [] {});
  simulator_.Run();
  EXPECT_GT(profiler_.activities_recorded(), 0u);
  // ~50 queries x 1ms = 50ms of CPU time.
  EXPECT_NEAR(profiler_.total_cpu_time().ToSeconds(), 0.05, 0.02);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [this](uint64_t seed) {
    sim::Simulator simulator;
    net::RpcSystem rpc(&simulator, &network_, Rng(2));
    storage::DistributedFileSystem dfs(&simulator, &rpc,
                                       storage::DfsParams(), Rng(3));
    profiling::Tracer tracer(1, Rng(4));
    profiling::CpuProfiler profiler(SimTime::Micros(200), 3e9, Rng(5));
    EngineContext context;
    context.simulator = &simulator;
    context.dfs = &dfs;
    context.rpc = &rpc;
    context.tracer = &tracer;
    context.profiler = &profiler;
    context.registry = &registry_;
    PlatformEngine engine(context, SimpleSpec(), Rng(seed));
    engine.Run(30, 1000.0, [] {});
    simulator.Run();
    return simulator.Now();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST_F(EngineTest, FiniteWorkerPoolQueuesComputePhases) {
  PlatformSpec spec = SimpleSpec();
  spec.worker_cores = 1;  // force serialization of compute phases
  PlatformEngine engine(Context(), spec, Rng(7));
  // Arrive much faster than one core can serve 1ms compute phases.
  engine.Run(20, 100000.0, [] {});
  simulator_.Run();
  EXPECT_EQ(engine.queries_completed(), 20u);
  ASSERT_NE(engine.worker_pool(), nullptr);
  // The single core must have been the bottleneck: queueing happened.
  EXPECT_GT(engine.worker_pool()->wait_stats().max(), 0.0);
  // CPU spans never overlap with one core.
  std::vector<std::pair<SimTime, SimTime>> cpu_spans;
  for (const auto& trace : tracer_.traces()) {
    for (const auto& span : trace.spans) {
      if (span.kind == profiling::SpanKind::kCpu) {
        cpu_spans.emplace_back(span.start, span.end);
      }
    }
  }
  std::sort(cpu_spans.begin(), cpu_spans.end());
  for (size_t i = 1; i < cpu_spans.size(); ++i) {
    EXPECT_GE(cpu_spans[i].first, cpu_spans[i - 1].second);
  }
}

TEST_F(EngineTest, UnlimitedPoolHasNoWorkerResource) {
  PlatformEngine engine(Context(), SimpleSpec(), Rng(7));
  EXPECT_EQ(engine.worker_pool(), nullptr);
}

TEST_F(EngineTest, OverlappingPhaseRunsConcurrently) {
  PlatformSpec spec = SimpleSpec();
  // Mark the IO phase as overlapping the compute phase.
  spec.query_types[0].phases[1].overlap_with_previous = true;
  PlatformEngine engine(Context(), spec, Rng(7));
  engine.Run(10, 1000.0, [] {});
  simulator_.Run();
  bool saw_overlap = false;
  for (const auto& trace : tracer_.traces()) {
    SimTime cpu_start, cpu_end, io_start;
    bool has_io = false;
    for (const auto& span : trace.spans) {
      if (span.kind == profiling::SpanKind::kCpu) {
        cpu_start = span.start;
        cpu_end = span.end;
      }
      if (span.kind == profiling::SpanKind::kIo && !has_io) {
        io_start = span.start;
        has_io = true;
      }
    }
    if (has_io && io_start < cpu_end && io_start >= cpu_start) {
      saw_overlap = true;
    }
  }
  EXPECT_TRUE(saw_overlap);
}

}  // namespace
}  // namespace hyperprof::platforms
