// Determinism contract of the sharded fleet: the parallelism knob selects
// host threads only — every setting must recover bit-identical
// PlatformResult breakdowns, because each platform shard owns its
// substrate and derives its RNG streams from hash(seed, platform_index)
// alone (see DESIGN.md).

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "platforms/fleet.h"
#include "profiling/categories.h"

namespace hyperprof::platforms {
namespace {

std::unique_ptr<FleetSimulation> RunFleet(uint32_t parallelism,
                                          uint64_t seed = 42,
                                          uint32_t shards = 0) {
  FleetConfig config;
  // Sharded runs pay per-epoch barrier overhead at test scale; a smaller
  // volume keeps the 1/2/3/8 sweep fast without weakening bit-identity.
  config.queries_per_platform = shards > 0 ? 200 : 400;
  config.trace_sample_one_in = 5;
  config.seed = seed;
  config.parallelism = parallelism;
  config.shards_per_platform = shards;
  auto fleet = std::make_unique<FleetSimulation>(config);
  fleet->AddDefaultPlatforms();
  fleet->RunAll();
  return fleet;
}

/**
 * The same fleet driven through the incremental Start/Advance/Finish API
 * in seed-derived random virtual-time increments, as the serving daemon
 * drives it — pausing must never become a barrier (DESIGN.md §16).
 */
std::unique_ptr<FleetSimulation> RunFleetIncremental(uint64_t step_seed,
                                                     uint32_t shards = 0) {
  FleetConfig config;
  config.queries_per_platform = shards > 0 ? 200 : 400;
  config.trace_sample_one_in = 5;
  config.seed = 42;
  config.parallelism = 1;
  config.shards_per_platform = shards;
  auto fleet = std::make_unique<FleetSimulation>(config);
  fleet->AddDefaultPlatforms();
  fleet->Start();
  Rng rng(step_seed);
  SimTime horizon = SimTime::Zero();
  while (true) {
    horizon += SimTime::Micros(100 + static_cast<int64_t>(
                                         rng.NextBounded(20000)));
    if (!fleet->Advance(horizon)) break;
  }
  fleet->Finish();
  return fleet;
}

/** Shares the serial (parallelism=1) reference run across the suite. */
FleetSimulation& SerialReference() {
  static std::unique_ptr<FleetSimulation> fleet = RunFleet(1);
  return *fleet;
}

/** The sharded reference: one worker shard, serial host execution. */
FleetSimulation& ShardedReference() {
  static std::unique_ptr<FleetSimulation> fleet =
      RunFleet(/*parallelism=*/1, /*seed=*/42, /*shards=*/1);
  return *fleet;
}

void ExpectContinuousIdentical(FleetSimulation& a, FleetSimulation& b);

void ExpectBitIdentical(FleetSimulation& serial, FleetSimulation& parallel) {
  ASSERT_EQ(serial.platform_count(), parallel.platform_count());
  EXPECT_EQ(serial.total_events_executed(), parallel.total_events_executed());
  for (size_t p = 0; p < serial.platform_count(); ++p) {
    PlatformResult a = serial.Result(p);
    PlatformResult b = parallel.Result(p);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.queries_completed, b.queries_completed) << a.name;
    EXPECT_EQ(a.queries_sampled, b.queries_sampled) << a.name;

    // Exact double equality is deliberate: identical streams must yield
    // identical arithmetic, not merely statistically similar results.
    for (size_t g = 0; g < profiling::kNumQueryGroups; ++g) {
      const auto& ga = a.e2e.groups[g];
      const auto& gb = b.e2e.groups[g];
      EXPECT_EQ(ga.query_count, gb.query_count) << a.name << " group " << g;
      EXPECT_EQ(ga.time.cpu, gb.time.cpu) << a.name << " group " << g;
      EXPECT_EQ(ga.time.io, gb.time.io) << a.name << " group " << g;
      EXPECT_EQ(ga.time.remote, gb.time.remote) << a.name << " group " << g;
    }
    EXPECT_EQ(a.e2e.overall.time.cpu, b.e2e.overall.time.cpu) << a.name;
    EXPECT_EQ(a.e2e.overall.time.io, b.e2e.overall.time.io) << a.name;
    EXPECT_EQ(a.e2e.overall.time.remote, b.e2e.overall.time.remote)
        << a.name;

    for (size_t c = 0; c < profiling::kNumFnCategories; ++c) {
      EXPECT_EQ(a.cycles.cycles_by_category[c], b.cycles.cycles_by_category[c])
          << a.name << " category " << c;
    }

    EXPECT_EQ(a.microarch.overall.cycles(), b.microarch.overall.cycles())
        << a.name;
    EXPECT_EQ(a.microarch.overall.instructions(),
              b.microarch.overall.instructions())
        << a.name;
    for (int broad = 0; broad < 3; ++broad) {
      EXPECT_EQ(a.microarch.by_broad[broad].Ipc(),
                b.microarch.by_broad[broad].Ipc())
          << a.name << " broad " << broad;
    }

    // Raw traces too: same sampled queries, same span boundaries.
    const auto& ta = serial.TracesOf(p);
    const auto& tb = parallel.TracesOf(p);
    ASSERT_EQ(ta.size(), tb.size()) << a.name;
    for (size_t t = 0; t < ta.size(); ++t) {
      EXPECT_EQ(ta[t].trace_id, tb[t].trace_id) << a.name << " trace " << t;
      EXPECT_EQ(ta[t].start, tb[t].start) << a.name << " trace " << t;
      EXPECT_EQ(ta[t].end, tb[t].end) << a.name << " trace " << t;
      EXPECT_EQ(ta[t].spans.size(), tb[t].spans.size())
          << a.name << " trace " << t;
    }
  }
  // The continuous-profiling windows are part of the determinism contract
  // too: per-shard accumulation merged at the finalize barrier must agree
  // exactly across every parallelism and shard-count setting (integer
  // accumulation makes the merge order-invariant; DESIGN.md §15).
  ExpectContinuousIdentical(serial, parallel);
}

TEST(FleetParallelTest, SerialAndParallelRunsAreBitIdentical) {
  auto parallel = RunFleet(/*parallelism=*/3);
  ExpectBitIdentical(SerialReference(), *parallel);
}

TEST(FleetParallelTest, HardwareDefaultMatchesSerial) {
  auto hardware = RunFleet(/*parallelism=*/0);
  ExpectBitIdentical(SerialReference(), *hardware);
}

TEST(FleetParallelTest, OversubscribedPoolMatchesSerial) {
  // More threads than platforms: the pool is clamped, results unchanged.
  auto oversubscribed = RunFleet(/*parallelism=*/16);
  ExpectBitIdentical(SerialReference(), *oversubscribed);
}

TEST(FleetParallelTest, IncrementalAdvanceMatchesOneShotRun) {
  // Two different pause schedules, both bit-identical to the one-shot
  // reference: Advance(until) executes the exact same events in the exact
  // same order, only in installments.
  for (uint64_t step_seed : {7u, 1234u}) {
    auto incremental = RunFleetIncremental(step_seed);
    ExpectBitIdentical(SerialReference(), *incremental);
  }
}

TEST(FleetParallelTest, DifferentSeedsProduceDifferentFleets) {
  // Sanity check that the comparison above has teeth: changing the fleet
  // seed changes the recovered numbers.
  auto other = RunFleet(/*parallelism=*/1, /*seed=*/43);
  EXPECT_NE(SerialReference().total_events_executed(),
            other->total_events_executed());
}

// --- Intra-platform sharding: shard count must never change an output bit
// (DESIGN.md §13). All comparisons are within the sharded timing model;
// fused (shards=0) platforms are a different model family.

TEST(FleetShardingTest, ShardCountsRecoverBitIdenticalResults) {
  for (uint32_t shards : {2u, 3u, 8u}) {
    auto sharded = RunFleet(/*parallelism=*/1, /*seed=*/42, shards);
    ExpectBitIdentical(ShardedReference(), *sharded);
  }
}

TEST(FleetShardingTest, IncrementalAdvanceMatchesShardedReference) {
  // Incremental advance across shard-group epochs: pausing mid-epoch must
  // not flip mailboxes or re-plan deadlines, so the epoch structure — and
  // every digested bit — matches the one-shot sharded run.
  for (uint32_t shards : {1u, 4u}) {
    auto incremental = RunFleetIncremental(/*step_seed=*/99, shards);
    ExpectBitIdentical(ShardedReference(), *incremental);
  }
}

TEST(FleetShardingTest, ParallelShardedMatchesSerialSharded) {
  // Epoch jobs on the hardware-default pool, nested under the platform
  // ParallelFor — must match both the serial 4-shard run and the 1-shard
  // reference.
  auto parallel = RunFleet(/*parallelism=*/0, /*seed=*/42, /*shards=*/4);
  auto serial = RunFleet(/*parallelism=*/1, /*seed=*/42, /*shards=*/4);
  ExpectBitIdentical(*serial, *parallel);
  ExpectBitIdentical(ShardedReference(), *parallel);
}

TEST(FleetShardingTest, ShardFabricConservesMessages) {
  auto fleet = RunFleet(/*parallelism=*/1, /*seed=*/42, /*shards=*/2);
  for (size_t p = 0; p < fleet->platform_count(); ++p) {
    ShardStats stats = fleet->ShardStatsOf(p);
    EXPECT_EQ(stats.shard_count, 2u);
    EXPECT_GT(stats.messages_posted, 0u);
    EXPECT_EQ(stats.messages_delivered, stats.messages_posted);
    EXPECT_EQ(stats.undelivered, 0u);
    EXPECT_GT(stats.epochs, 0u);
  }
  // The fused reference reports no shard fabric at all.
  EXPECT_EQ(SerialReference().ShardStatsOf(0).shard_count, 0u);
}

TEST(FleetShardingTest, TotalsMatchLegacyAccessorsWhenFused) {
  FleetSimulation& fleet = SerialReference();
  for (size_t p = 0; p < fleet.platform_count(); ++p) {
    PlatformTotals totals = fleet.TotalsOf(p);
    EXPECT_EQ(totals.queries_completed,
              fleet.EngineOf(p).queries_completed());
    EXPECT_EQ(totals.events_executed,
              fleet.SimulatorOf(p).events_executed());
    EXPECT_EQ(totals.completed_calls, fleet.RpcOf(p).completed_calls());
    EXPECT_EQ(totals.wasted_seconds, fleet.RpcOf(p).wasted_seconds());
    EXPECT_EQ(totals.fault_decisions, fleet.FaultsOf(p).decisions());
  }
}

TEST(FleetShardingTest, MemoryStatsAccountSimulationState) {
  FleetMemoryStats stats = ShardedReference().MemoryStats();
  EXPECT_GT(stats.kernel_bytes, 0u);
  EXPECT_GT(stats.tracer_bytes, 0u);
  EXPECT_GT(stats.profiler_bytes, 0u);
  EXPECT_EQ(stats.total_bytes,
            stats.kernel_bytes + stats.tracer_bytes + stats.profiler_bytes);
  // Three platforms x four clusters x the default 64 hosts.
  EXPECT_EQ(stats.simulated_workers, 3u * 4u * 64u);
  EXPECT_GT(stats.bytes_per_worker, 0.0);
}

void ExpectContinuousIdentical(FleetSimulation& a, FleetSimulation& b) {
  ASSERT_EQ(a.platform_count(), b.platform_count());
  for (size_t p = 0; p < a.platform_count(); ++p) {
    const profiling::ContinuousProfiler* ca = a.ContinuousOf(p);
    const profiling::ContinuousProfiler* cb = b.ContinuousOf(p);
    ASSERT_NE(ca, nullptr);
    ASSERT_NE(cb, nullptr);
    EXPECT_EQ(ca->observed_queries(), cb->observed_queries()) << "p" << p;
    EXPECT_EQ(ca->first_window(), cb->first_window()) << "p" << p;
    EXPECT_EQ(ca->last_window(), cb->last_window()) << "p" << p;
    EXPECT_EQ(ca->windows_evicted(), cb->windows_evicted()) << "p" << p;
    for (int64_t w = ca->first_window(); w <= ca->last_window(); ++w) {
      const profiling::WindowSlot* sa = ca->WindowAt(w);
      const profiling::WindowSlot* sb = cb->WindowAt(w);
      ASSERT_EQ(sa == nullptr, sb == nullptr) << "p" << p << " w" << w;
      if (sa == nullptr) continue;
      EXPECT_EQ(sa->queries, sb->queries) << "p" << p << " w" << w;
      EXPECT_EQ(sa->total_nanos, sb->total_nanos) << "p" << p << " w" << w;
      for (size_t c = 0; c < profiling::kNumWindowCategories; ++c) {
        EXPECT_EQ(sa->sketches[c].bucket_counts(),
                  sb->sketches[c].bucket_counts())
            << "p" << p << " w" << w << " cat " << c;
      }
    }
    for (size_t c = 0; c < profiling::kNumWindowCategories; ++c) {
      auto cat = static_cast<profiling::WindowCategory>(c);
      EXPECT_EQ(ca->budget_stat(cat).windows_evaluated,
                cb->budget_stat(cat).windows_evaluated)
          << "p" << p << " cat " << c;
      EXPECT_EQ(ca->budget_stat(cat).overruns, cb->budget_stat(cat).overruns)
          << "p" << p << " cat " << c;
      EXPECT_EQ(ca->budget_stat(cat).worst_total_nanos,
                cb->budget_stat(cat).worst_total_nanos)
          << "p" << p << " cat " << c;
      // Quantiles are pure functions of the (equal) integer counts, so
      // exact double equality is the right bar.
      EXPECT_EQ(ca->RollingQuantile(cat, 0.5), cb->RollingQuantile(cat, 0.5))
          << "p" << p << " cat " << c;
      EXPECT_EQ(ca->RollingQuantile(cat, 0.99),
                cb->RollingQuantile(cat, 0.99))
          << "p" << p << " cat " << c;
    }
    ASSERT_EQ(ca->anomalies().size(), cb->anomalies().size()) << "p" << p;
    for (size_t i = 0; i < ca->anomalies().size(); ++i) {
      EXPECT_EQ(ca->anomalies()[i].window, cb->anomalies()[i].window);
      EXPECT_EQ(ca->anomalies()[i].category, cb->anomalies()[i].category);
      EXPECT_EQ(ca->anomalies()[i].total_nanos,
                cb->anomalies()[i].total_nanos);
    }
  }
}

TEST(FleetShardingTest, ContinuousProfilersSeeEveryQuery) {
  FleetSimulation& fleet = ShardedReference();
  for (size_t p = 0; p < fleet.platform_count(); ++p) {
    const profiling::ContinuousProfiler* continuous = fleet.ContinuousOf(p);
    ASSERT_NE(continuous, nullptr);
    // Sampled-only: the tracer feeds the window observer, so the window
    // totals cover exactly the sampled query population.
    EXPECT_EQ(continuous->observed_queries(), fleet.Result(p).queries_sampled);
    EXPECT_EQ(continuous->late_observations(), 0u);
    EXPECT_EQ(continuous->merge_drops(), 0u);
    EXPECT_GT(continuous->WindowsInHistory(), 0u);
    EXPECT_GT(continuous->RollingQuantile(profiling::WindowCategory::kLatency,
                                          0.5),
              0.0);
  }
}

TEST(FleetParallelTest, PlatformSeedsAreDistinctAndStable) {
  EXPECT_EQ(FleetSimulation::PlatformSeed(42, 0),
            FleetSimulation::PlatformSeed(42, 0));
  EXPECT_NE(FleetSimulation::PlatformSeed(42, 0),
            FleetSimulation::PlatformSeed(42, 1));
  EXPECT_NE(FleetSimulation::PlatformSeed(42, 0),
            FleetSimulation::PlatformSeed(43, 0));
}

}  // namespace
}  // namespace hyperprof::platforms
