// Determinism contract of the sharded fleet: the parallelism knob selects
// host threads only — every setting must recover bit-identical
// PlatformResult breakdowns, because each platform shard owns its
// substrate and derives its RNG streams from hash(seed, platform_index)
// alone (see DESIGN.md).

#include <memory>

#include <gtest/gtest.h>

#include "platforms/fleet.h"
#include "profiling/categories.h"

namespace hyperprof::platforms {
namespace {

std::unique_ptr<FleetSimulation> RunFleet(uint32_t parallelism,
                                          uint64_t seed = 42) {
  FleetConfig config;
  config.queries_per_platform = 400;
  config.trace_sample_one_in = 5;
  config.seed = seed;
  config.parallelism = parallelism;
  auto fleet = std::make_unique<FleetSimulation>(config);
  fleet->AddDefaultPlatforms();
  fleet->RunAll();
  return fleet;
}

/** Shares the serial (parallelism=1) reference run across the suite. */
FleetSimulation& SerialReference() {
  static std::unique_ptr<FleetSimulation> fleet = RunFleet(1);
  return *fleet;
}

void ExpectBitIdentical(FleetSimulation& serial, FleetSimulation& parallel) {
  ASSERT_EQ(serial.platform_count(), parallel.platform_count());
  EXPECT_EQ(serial.total_events_executed(), parallel.total_events_executed());
  for (size_t p = 0; p < serial.platform_count(); ++p) {
    PlatformResult a = serial.Result(p);
    PlatformResult b = parallel.Result(p);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.queries_completed, b.queries_completed) << a.name;
    EXPECT_EQ(a.queries_sampled, b.queries_sampled) << a.name;

    // Exact double equality is deliberate: identical streams must yield
    // identical arithmetic, not merely statistically similar results.
    for (size_t g = 0; g < profiling::kNumQueryGroups; ++g) {
      const auto& ga = a.e2e.groups[g];
      const auto& gb = b.e2e.groups[g];
      EXPECT_EQ(ga.query_count, gb.query_count) << a.name << " group " << g;
      EXPECT_EQ(ga.time.cpu, gb.time.cpu) << a.name << " group " << g;
      EXPECT_EQ(ga.time.io, gb.time.io) << a.name << " group " << g;
      EXPECT_EQ(ga.time.remote, gb.time.remote) << a.name << " group " << g;
    }
    EXPECT_EQ(a.e2e.overall.time.cpu, b.e2e.overall.time.cpu) << a.name;
    EXPECT_EQ(a.e2e.overall.time.io, b.e2e.overall.time.io) << a.name;
    EXPECT_EQ(a.e2e.overall.time.remote, b.e2e.overall.time.remote)
        << a.name;

    for (size_t c = 0; c < profiling::kNumFnCategories; ++c) {
      EXPECT_EQ(a.cycles.cycles_by_category[c], b.cycles.cycles_by_category[c])
          << a.name << " category " << c;
    }

    EXPECT_EQ(a.microarch.overall.cycles(), b.microarch.overall.cycles())
        << a.name;
    EXPECT_EQ(a.microarch.overall.instructions(),
              b.microarch.overall.instructions())
        << a.name;
    for (int broad = 0; broad < 3; ++broad) {
      EXPECT_EQ(a.microarch.by_broad[broad].Ipc(),
                b.microarch.by_broad[broad].Ipc())
          << a.name << " broad " << broad;
    }

    // Raw traces too: same sampled queries, same span boundaries.
    const auto& ta = serial.TracesOf(p);
    const auto& tb = parallel.TracesOf(p);
    ASSERT_EQ(ta.size(), tb.size()) << a.name;
    for (size_t t = 0; t < ta.size(); ++t) {
      EXPECT_EQ(ta[t].start, tb[t].start) << a.name << " trace " << t;
      EXPECT_EQ(ta[t].end, tb[t].end) << a.name << " trace " << t;
      EXPECT_EQ(ta[t].spans.size(), tb[t].spans.size())
          << a.name << " trace " << t;
    }
  }
}

TEST(FleetParallelTest, SerialAndParallelRunsAreBitIdentical) {
  auto parallel = RunFleet(/*parallelism=*/3);
  ExpectBitIdentical(SerialReference(), *parallel);
}

TEST(FleetParallelTest, HardwareDefaultMatchesSerial) {
  auto hardware = RunFleet(/*parallelism=*/0);
  ExpectBitIdentical(SerialReference(), *hardware);
}

TEST(FleetParallelTest, OversubscribedPoolMatchesSerial) {
  // More threads than platforms: the pool is clamped, results unchanged.
  auto oversubscribed = RunFleet(/*parallelism=*/16);
  ExpectBitIdentical(SerialReference(), *oversubscribed);
}

TEST(FleetParallelTest, DifferentSeedsProduceDifferentFleets) {
  // Sanity check that the comparison above has teeth: changing the fleet
  // seed changes the recovered numbers.
  auto other = RunFleet(/*parallelism=*/1, /*seed=*/43);
  EXPECT_NE(SerialReference().total_events_executed(),
            other->total_events_executed());
}

TEST(FleetParallelTest, PlatformSeedsAreDistinctAndStable) {
  EXPECT_EQ(FleetSimulation::PlatformSeed(42, 0),
            FleetSimulation::PlatformSeed(42, 0));
  EXPECT_NE(FleetSimulation::PlatformSeed(42, 0),
            FleetSimulation::PlatformSeed(42, 1));
  EXPECT_NE(FleetSimulation::PlatformSeed(42, 0),
            FleetSimulation::PlatformSeed(43, 0));
}

}  // namespace
}  // namespace hyperprof::platforms
