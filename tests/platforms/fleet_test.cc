// Integration test: runs the full fleet characterization at reduced scale
// and asserts the profiling pipeline *recovers* the calibrated ground
// truth — the reproduction contract behind Figures 2-6 and Tables 6-7.

#include "platforms/fleet.h"

#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "profiling/categories.h"

namespace hyperprof::platforms {
namespace {

using profiling::BroadCategory;
using profiling::BroadOf;
using profiling::FnCategory;

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FleetConfig config;
    config.queries_per_platform = 4000;
    config.trace_sample_one_in = 10;
    fleet_ = new FleetSimulation(config);
    fleet_->AddDefaultPlatforms();
    fleet_->RunAll();
  }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }

  static FleetSimulation* fleet_;
};

FleetSimulation* FleetTest::fleet_ = nullptr;

TEST_F(FleetTest, AllQueriesComplete) {
  for (size_t i = 0; i < fleet_->platform_count(); ++i) {
    PlatformResult result = fleet_->Result(i);
    EXPECT_EQ(result.queries_completed, 4000u) << result.name;
    EXPECT_GT(result.queries_sampled, 300u) << result.name;
  }
}

TEST_F(FleetTest, BroadCycleSharesRecoverGroundTruth) {
  const PlatformSpec specs[] = {SpannerSpec(), BigTableSpec(),
                                BigQuerySpec()};
  for (size_t p = 0; p < 3; ++p) {
    PlatformResult result = fleet_->Result(p);
    double truth[3] = {0, 0, 0};
    for (size_t i = 0; i < profiling::kNumFnCategories; ++i) {
      truth[static_cast<int>(BroadOf(static_cast<FnCategory>(i)))] +=
          specs[p].compute_mix[i];
    }
    for (int b = 0; b < 3; ++b) {
      EXPECT_NEAR(
          result.cycles.BroadFraction(static_cast<BroadCategory>(b)),
          truth[b], 0.03)
          << result.name << " broad " << b;
    }
  }
}

TEST_F(FleetTest, FineCycleSharesRecoverGroundTruth) {
  const PlatformSpec specs[] = {SpannerSpec(), BigTableSpec(),
                                BigQuerySpec()};
  for (size_t p = 0; p < 3; ++p) {
    PlatformResult result = fleet_->Result(p);
    for (size_t i = 0; i < profiling::kNumFnCategories; ++i) {
      FnCategory category = static_cast<FnCategory>(i);
      EXPECT_NEAR(result.cycles.FineFractionOfTotal(category),
                  specs[p].compute_mix[i], 0.02)
          << result.name << " " << profiling::FnCategoryName(category);
    }
  }
}

TEST_F(FleetTest, MicroarchRecoversTable7) {
  const PlatformSpec specs[] = {SpannerSpec(), BigTableSpec(),
                                BigQuerySpec()};
  for (size_t p = 0; p < 3; ++p) {
    PlatformResult result = fleet_->Result(p);
    for (int b = 0; b < 3; ++b) {
      const auto& truth = specs[p].microarch[b];
      const auto& measured = result.microarch.by_broad[b];
      EXPECT_NEAR(measured.Ipc(), truth.ipc, 0.05)
          << result.name << " broad " << b;
      EXPECT_NEAR(measured.BrMpki(), truth.br_mpki,
                  0.05 * truth.br_mpki + 0.1);
      EXPECT_NEAR(measured.L1iMpki(), truth.l1i_mpki,
                  0.05 * truth.l1i_mpki + 0.1);
      EXPECT_NEAR(measured.DtlbLdMpki(), truth.dtlb_ld_mpki,
                  0.05 * truth.dtlb_ld_mpki + 0.1);
    }
  }
}

TEST_F(FleetTest, QueryGroupSharesMatchPaperClaims) {
  // Section 4.2: >60% of Spanner/BigTable queries CPU heavy, ~10% for
  // BigQuery.
  PlatformResult spanner = fleet_->Result("Spanner");
  PlatformResult bigtable = fleet_->Result("BigTable");
  PlatformResult bigquery = fleet_->Result("BigQuery");
  EXPECT_GT(spanner.e2e.QueryShare(profiling::QueryGroup::kCpuHeavy), 0.60);
  EXPECT_GT(bigtable.e2e.QueryShare(profiling::QueryGroup::kCpuHeavy),
            0.60);
  EXPECT_LT(bigquery.e2e.QueryShare(profiling::QueryGroup::kCpuHeavy),
            0.25);
  EXPECT_GT(bigquery.e2e.QueryShare(profiling::QueryGroup::kIoHeavy), 0.4);
}

TEST_F(FleetTest, CrossPlatformBalanceMatchesPaperClaim) {
  // Section 4.2: across platforms, queries spend ~48% on compute and ~52%
  // on remote work + storage combined (query-weighted mean; generous
  // tolerance for the simulated substrate).
  double cpu = 0, dep = 0;
  for (size_t i = 0; i < fleet_->platform_count(); ++i) {
    auto mean = fleet_->Result(i).e2e.overall.MeanQueryFractions();
    cpu += mean.cpu;
    dep += mean.io + mean.remote;
  }
  cpu /= 3;
  dep /= 3;
  EXPECT_NEAR(cpu, 0.48, 0.10);
  EXPECT_NEAR(dep, 0.52, 0.10);
}

TEST_F(FleetTest, BigTableOverallIsRemoteDominated) {
  // Remote compaction waits dominate BigTable's time-weighted average —
  // the source of the paper's enormous Figure 9 upper bound.
  PlatformResult bigtable = fleet_->Result("BigTable");
  EXPECT_GT(bigtable.e2e.overall.Fractions().remote, 0.9);
  EXPECT_LT(bigtable.e2e.overall.Fractions().cpu, 0.05);
}

TEST_F(FleetTest, SyncFactorEstimatesInUnitRange) {
  for (size_t i = 0; i < fleet_->platform_count(); ++i) {
    double f = profiling::EstimateSyncFactor(fleet_->TracesOf(i));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Platforms with pipelined scans (Spanner, BigQuery) overlap CPU with
  // IO, so f < 1; BigTable phases are strictly serial.
  EXPECT_LT(profiling::EstimateSyncFactor(fleet_->TracesOf(0)), 0.999);
  EXPECT_GT(profiling::EstimateSyncFactor(fleet_->TracesOf(1)), 0.999);
}

TEST_F(FleetTest, StorageTiersActuallyExercised) {
  // The paper observes reads hitting SSD more than HDD; with warmed
  // caches our substrate reproduces that ordering for the databases.
  PlatformResult spanner = fleet_->Result("Spanner");
  PlatformResult bigquery = fleet_->Result("BigQuery");
  EXPECT_LT(spanner.e2e.overall.MeanQueryFractions().io,
            bigquery.e2e.overall.MeanQueryFractions().io);
  // Direct tier counters: every tier serves reads, and for the databases
  // SSD serves more than HDD (Section 3's observation).
  for (size_t p = 0; p < 2; ++p) {
    const auto& dfs = fleet_->DfsOf(p);
    double ram = dfs.TierServeFraction(storage::Tier::kRam);
    double ssd = dfs.TierServeFraction(storage::Tier::kSsd);
    double hdd = dfs.TierServeFraction(storage::Tier::kHdd);
    EXPECT_GT(ram, 0.3) << p;
    EXPECT_GT(ssd, hdd) << p;
    EXPECT_NEAR(ram + ssd + hdd, 1.0, 1e-9) << p;
  }
}

TEST_F(FleetTest, SpannerConsensusSpansComeFromRealPaxos) {
  // Every sampled read_write_txn / global_commit trace must contain a
  // consensus remote-work span produced by an actual Paxos round.
  const auto& traces = fleet_->TracesOf(0);
  profiling::NameId consensus_id = fleet_->NamesOf(0).Find("consensus");
  ASSERT_NE(consensus_id, profiling::kInvalidNameId);
  int consensus_spans = 0;
  for (const auto& trace : traces) {
    for (const auto& span : trace.spans) {
      if (span.kind == profiling::SpanKind::kRemoteWork &&
          span.name == consensus_id) {
        ++consensus_spans;
        // A Paxos round needs at least two message exchanges plus
        // acceptor service; anything under ~200us would mean the
        // protocol did not actually run.
        EXPECT_GT(span.end - span.start, SimTime::Micros(200));
      }
    }
  }
  EXPECT_GT(consensus_spans, 50);
}

TEST_F(FleetTest, BigQueryShuffleSpansComeFromRealShuffle) {
  const auto& traces = fleet_->TracesOf(2);
  profiling::NameId shuffle_id = fleet_->NamesOf(2).Find("shuffle");
  ASSERT_NE(shuffle_id, profiling::kInvalidNameId);
  int shuffle_spans = 0;
  for (const auto& trace : traces) {
    for (const auto& span : trace.spans) {
      if (span.kind == profiling::SpanKind::kRemoteWork &&
          span.name == shuffle_id) {
        ++shuffle_spans;
        // 8 mappers x 64 MiB through the fabric takes tens of ms.
        EXPECT_GT(span.end - span.start, SimTime::Millis(10));
      }
    }
  }
  EXPECT_GT(shuffle_spans, 20);
}

FleetConfig FaultedConfig() {
  FleetConfig config;
  config.queries_per_platform = 300;
  config.trace_sample_one_in = 5;
  // Light but ever-present faults plus one fileserver dead for the whole
  // run, with retry + hedge policies on the DFS paths.
  config.fault.drop_probability = 0.01;
  config.fault.error_probability = 0.01;
  config.fault.slowdown_probability = 0.03;
  config.outages.push_back({net::NodeId{0, 100, 2}, SimTime::Zero(),
                            SimTime::FromSeconds(100)});
  config.dfs.read_policy.timeout = SimTime::Millis(50);
  config.dfs.read_policy.max_attempts = 3;
  config.dfs.read_policy.hedge_delay = SimTime::Millis(10);
  config.dfs.write_policy.timeout = SimTime::Millis(100);
  config.dfs.write_policy.max_attempts = 2;
  return config;
}

TEST(FaultedFleetTest, FaultedRunCompletesAndTracksResilience) {
  FleetSimulation fleet(FaultedConfig());
  fleet.AddDefaultPlatforms();
  fleet.RunAll();
  uint64_t injected = 0, outage_hits = 0, retries = 0, hedges = 0;
  uint64_t annotations = 0;
  for (size_t p = 0; p < 3; ++p) {
    // Every query still completes — failures surface as Status, never as
    // a hung barrier — and the tracer loses nothing under retries.
    EXPECT_EQ(fleet.Result(p).queries_completed, 300u);
    EXPECT_EQ(fleet.TracerOf(p).dropped_finishes(), 0u);
    EXPECT_EQ(fleet.TracerOf(p).dropped_spans(), 0u);
    EXPECT_EQ(fleet.TracerOf(p).open_traces(), 0u);
    EXPECT_TRUE(fleet.FaultsOf(p).armed());
    injected += fleet.FaultsOf(p).injected_total();
    outage_hits += fleet.FaultsOf(p).outage_hits();
    retries += fleet.RpcOf(p).retries_issued();
    hedges += fleet.RpcOf(p).hedges_issued();
    profiling::ResilienceReport report = profiling::ComputeResilienceReport(
        fleet.TracesOf(p), fleet.NamesOf(p));
    annotations +=
        report.retry_spans + report.hedge_spans + report.error_spans;
    EXPECT_GE(report.wasted_seconds, 0.0);
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(outage_hits, 0u);
  EXPECT_GT(retries, 0u);
  EXPECT_GT(hedges, 0u);
  // Sampled traces carry the retry/hedge/error annotations the
  // resilience report mines.
  EXPECT_GT(annotations, 0u);
}

TEST(FaultedFleetTest, SerialAndParallelFaultedRunsBitIdentical) {
  // PR 1's serial==parallel contract must hold with faults armed: fault
  // draws come from per-shard private streams, so thread scheduling can
  // never perturb them.
  auto signature = [](uint32_t parallelism) {
    FleetConfig config = FaultedConfig();
    config.parallelism = parallelism;
    FleetSimulation fleet(config);
    fleet.AddDefaultPlatforms();
    fleet.RunAll();
    std::vector<double> values;
    for (size_t p = 0; p < 3; ++p) {
      const auto& overall = fleet.Result(p).e2e.overall;
      values.push_back(overall.time.cpu);
      values.push_back(overall.time.io);
      values.push_back(overall.time.remote);
      values.push_back(static_cast<double>(fleet.FaultsOf(p).decisions()));
      values.push_back(
          static_cast<double>(fleet.FaultsOf(p).injected_total()));
      values.push_back(static_cast<double>(fleet.RpcOf(p).retries_issued()));
      values.push_back(static_cast<double>(fleet.RpcOf(p).hedge_wins()));
      values.push_back(fleet.RpcOf(p).wasted_seconds());
    }
    return values;
  };
  std::vector<double> serial = signature(1);
  std::vector<double> parallel = signature(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "signature index " << i;
  }
}

}  // namespace
}  // namespace hyperprof::platforms
