// Golden regression gate for the trace pipeline: the breakdown numbers a
// fixed fleet configuration recovers must stay bit-identical across
// pipeline rewrites. The constants below were captured from the pre-intern
// (string-name, batch re-attribution) pipeline with %.17g formatting, so
// every double round-trips exactly; the streaming interned pipeline must
// reproduce them to the last bit, through both the streaming accumulator
// and the batch Compute* functions.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "platforms/fleet.h"
#include "profiling/aggregate.h"

namespace hyperprof::platforms {
namespace {

struct GoldenAggregate {
  double cpu, io, remote;        // summed attributed seconds
  double f_cpu, f_io, f_remote;  // summed per-query fractions
  uint64_t count;
};

struct GoldenTypeRow {
  const char* name;
  double cpu, io, remote;
  uint64_t count;
};

struct GoldenFine {
  int broad;
  int category;
  double fraction_within_broad;
};

struct GoldenPlatform {
  const char* name;
  GoldenAggregate groups[profiling::kNumQueryGroups];
  GoldenAggregate overall;
  std::vector<GoldenTypeRow> types;  // descending total time
  double sync_factor;
  std::vector<GoldenFine> fine;
};

const GoldenPlatform kGolden[] = {
    {"Spanner",
     {{0.81530036000000039, 0.071644810999999989, 0.11193633599999998,
       171.01080875786667, 18.207121400675415, 15.782069841457947, 205},
      {0.025907382999999996, 0.16993079999999997, 0.0029416199999999998,
       9.83017022124716, 37.303777548706556, 0.86605223004627663, 48},
      {0.11942266499999998, 0.015283269000000004, 0.25799732900000005,
       24.544372344986126, 4.1795650375793754, 49.276062617434498, 78},
      {0.0045226090000000004, 0.0021634720000000001, 0.002479312,
       1.4757354438028263, 0.70988814338316497, 0.81437641281400852, 3}},
     {0.96515301700000034, 0.25902235200000001, 0.37535459699999979,
      206.86108676790275, 60.400352130344508, 66.738561101752722, 334},
     {{"read_write_txn", 0.43060894999999993, 0.033522741000000009,
       0.128031546, 82},
      {"point_read", 0.409250799, 0.05096522400000001, 0, 134},
      {"global_commit", 0.069632611000000011, 0, 0.21761244400000004, 51},
      {"range_scan", 0.019517709999999997, 0.14898031, 0, 43},
      {"mixed", 0.036142947000000009, 0.025554077000000005,
       0.029710607000000003, 24}},
     0.86084661682951247,
     {{1, 15, 0.1301859799713877},
      {1, 16, 0.068669527896995708},
      {1, 17, 0.16595135908440631},
      {1, 18, 0.14878397711015737},
      {1, 19, 0.25178826895565093},
      {1, 20, 0.23462088698140202},
      {2, 21, 0.0087019579405366206},
      {2, 22, 0.091370558375634514},
      {2, 23, 0.03553299492385787},
      {2, 24, 0.055837563451776651},
      {2, 25, 0.047860768672951415},
      {2, 26, 0.26178390137780999},
      {2, 27, 0.46265409717186368},
      {2, 28, 0.036258158085569252}}},
    {"BigTable",
     {{0.51835557099999974, 0.09132996700000004, 0.0013094180000000001,
       198.82895214144315, 36.692051441779789, 0.47899641677697258, 236},
      {0.078432855000000024, 0.18287106699999997, 0, 19.67678986265037,
       27.323210137349626, 0, 47},
      {0.098607502, 0.0089207729999999982, 304.87100889000004,
       10.400419042736008, 2.5687176488888777, 28.03086330837511, 41},
      {0, 0, 0, 0, 0, 0, 0}},
     {0.69539592799999939, 0.28312180700000006, 304.87231830800005,
      228.90616104682962, 66.583979228018322, 28.509859725152083, 324},
     {{"compaction_wait", 0.059348601000000008, 0, 304.80906392900005, 12},
      {"point_get", 0.2897576939999999, 0.06232451700000001, 0, 147},
      {"scan", 0.11416812500000005, 0.18151841599999996, 0, 58},
      {"put", 0.18921601599999999, 0.029784390000000008, 0, 76},
      {"mixed", 0.04290549200000001, 0.0094944839999999992,
       0.063254378999999999, 31}},
     0.99999999999993405,
     {{1, 15, 0.28397873955960518},
      {1, 16, 0.031131359149582385},
      {1, 17, 0.050873196659073652},
      {1, 18, 0.040242976461655276},
      {1, 19, 0.21791951404707668},
      {1, 20, 0.37585421412300685},
      {2, 21, 0.024107142857142858},
      {2, 22, 0.16339285714285715},
      {2, 23, 0.057142857142857141},
      {2, 24, 0.060714285714285714},
      {2, 25, 0.087499999999999994},
      {2, 26, 0.22500000000000001},
      {2, 27, 0.33303571428571427},
      {2, 28, 0.049107142857142856}}},
    {"BigQuery",
     {{0.89424281299999986, 0.213182973, 0.041467868000000005,
       34.234032600614853, 6.1097835254072583, 4.6561838739778878, 45},
      {0.4447245580000001, 4.1817422059999991, 0.039652791,
       22.809528933238347, 138.62620042892195, 2.5642706378397202, 164},
      {1.6724444360000006, 1.3626812339999999, 3.9169732160000001,
       16.542496336614018, 12.278294560480736, 36.17920910290524, 65},
      {0, 0, 0, 0, 0, 0, 0}},
     {3.0114118069999991, 5.7576064129999986, 3.9980938749999999,
      73.586057870467158, 157.01427851480989, 43.39966361472284, 274},
     {{"shuffle_join", 1.6597302900000006, 1.3609606299999999,
       3.908873147, 61},
      {"large_scan", 0.028755318000000005, 3.4026916530000002, 0, 90},
      {"interactive_agg", 0.87873228699999983, 0.33897289100000011, 0, 30},
      {"export", 0.16623079099999996, 0.44588444500000007, 0, 46},
      {"lookup", 0.27796312099999998, 0.20909679399999997,
       0.089220728000000027, 47}},
     0.64196039165020924,
     {{1, 15, 0.31032304638151958},
      {1, 16, 0.050622631293990257},
      {1, 17, 0.16143295434037178},
      {1, 18, 0.12263129399025446},
      {1, 19, 0.24742826204656199},
      {1, 20, 0.10756181194730192},
      {2, 21, 0.021398250021658148},
      {2, 22, 0.09720176730486009},
      {2, 23, 0.042103439313869881},
      {2, 24, 0.048600883652430045},
      {2, 25, 0.039244563804903404},
      {2, 26, 0.18686649917699039},
      {2, 27, 0.5267261543792775},
      {2, 28, 0.037858442346010567}}},
};

void ExpectAggregateEq(const profiling::GroupAggregate& got,
                       const GoldenAggregate& want, const char* what) {
  EXPECT_EQ(got.time.cpu, want.cpu) << what;
  EXPECT_EQ(got.time.io, want.io) << what;
  EXPECT_EQ(got.time.remote, want.remote) << what;
  EXPECT_EQ(got.fraction_sum.cpu, want.f_cpu) << what;
  EXPECT_EQ(got.fraction_sum.io, want.f_io) << what;
  EXPECT_EQ(got.fraction_sum.remote, want.f_remote) << what;
  EXPECT_EQ(got.query_count, want.count) << what;
}

class GoldenBreakdownTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FleetConfig config;
    config.queries_per_platform = 1500;
    config.trace_sample_one_in = 5;
    fleet_ = new FleetSimulation(config);
    fleet_->AddDefaultPlatforms();
    fleet_->RunAll();
  }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }

  static FleetSimulation* fleet_;
};

FleetSimulation* GoldenBreakdownTest::fleet_ = nullptr;

TEST_F(GoldenBreakdownTest, StreamingE2eMatchesSeedBitForBit) {
  for (size_t p = 0; p < 3; ++p) {
    const GoldenPlatform& golden = kGolden[p];
    PlatformResult result = fleet_->Result(p);
    ASSERT_EQ(result.name, golden.name);
    for (size_t g = 0; g < profiling::kNumQueryGroups; ++g) {
      ExpectAggregateEq(result.e2e.groups[g], golden.groups[g], golden.name);
    }
    ExpectAggregateEq(result.e2e.overall, golden.overall, golden.name);
  }
}

TEST_F(GoldenBreakdownTest, BatchE2eOverRetainedTracesMatchesStreaming) {
  for (size_t p = 0; p < 3; ++p) {
    profiling::E2eBreakdownReport batch =
        profiling::ComputeE2eBreakdown(fleet_->TracesOf(p));
    const profiling::E2eBreakdownReport& streaming =
        fleet_->TracerOf(p).breakdown().e2e();
    for (size_t g = 0; g < profiling::kNumQueryGroups; ++g) {
      EXPECT_EQ(batch.groups[g].time.cpu, streaming.groups[g].time.cpu);
      EXPECT_EQ(batch.groups[g].fraction_sum.remote,
                streaming.groups[g].fraction_sum.remote);
      EXPECT_EQ(batch.groups[g].query_count, streaming.groups[g].query_count);
    }
    EXPECT_EQ(batch.overall.time.io, streaming.overall.time.io);
  }
}

TEST_F(GoldenBreakdownTest, PerTypeRowsMatchSeedBitForBit) {
  for (size_t p = 0; p < 3; ++p) {
    const GoldenPlatform& golden = kGolden[p];
    // Both the streaming rows and the batch recomputation must agree with
    // the seed capture.
    auto streaming =
        fleet_->TracerOf(p).breakdown().TypeRows(fleet_->NamesOf(p));
    auto batch = profiling::ComputePerTypeBreakdown(fleet_->TracesOf(p),
                                                    fleet_->NamesOf(p));
    for (const auto* rows : {&streaming, &batch}) {
      ASSERT_EQ(rows->size(), golden.types.size()) << golden.name;
      for (size_t i = 0; i < golden.types.size(); ++i) {
        const auto& got = (*rows)[i];
        const auto& want = golden.types[i];
        EXPECT_EQ(got.query_type, want.name) << golden.name;
        EXPECT_EQ(got.aggregate.time.cpu, want.cpu) << want.name;
        EXPECT_EQ(got.aggregate.time.io, want.io) << want.name;
        EXPECT_EQ(got.aggregate.time.remote, want.remote) << want.name;
        EXPECT_EQ(got.aggregate.query_count, want.count) << want.name;
      }
    }
  }
}

TEST_F(GoldenBreakdownTest, SyncFactorMatchesSeedBitForBit) {
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(fleet_->TracerOf(p).breakdown().EstimatedSyncFactor(),
              kGolden[p].sync_factor)
        << kGolden[p].name;
    EXPECT_EQ(profiling::EstimateSyncFactor(fleet_->TracesOf(p)),
              kGolden[p].sync_factor)
        << kGolden[p].name;
  }
}

TEST_F(GoldenBreakdownTest, CycleFineFractionsMatchSeedBitForBit) {
  for (size_t p = 0; p < 3; ++p) {
    const GoldenPlatform& golden = kGolden[p];
    PlatformResult result = fleet_->Result(p);
    for (const GoldenFine& fine : golden.fine) {
      EXPECT_EQ(result.cycles.FineFractionWithinBroad(
                    static_cast<profiling::FnCategory>(fine.category)),
                fine.fraction_within_broad)
          << golden.name << " category " << fine.category;
    }
  }
}

TEST_F(GoldenBreakdownTest, FaultInjectionDisabledIsProvablyInert) {
  // The fault model is installed on every shard, but an all-zero spec
  // leaves it un-armed: the RPC fabric never consults it, no resilience
  // counter moves, and no annotation span exists in any trace. Together
  // with the bit-identical goldens above, this pins the RNG-stream
  // contract of DESIGN.md §10 — fault injection is zero-perturbation
  // when off.
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_FALSE(fleet_->FaultsOf(p).armed());
    EXPECT_EQ(fleet_->FaultsOf(p).decisions(), 0u);
    EXPECT_EQ(fleet_->FaultsOf(p).injected_total(), 0u);
    EXPECT_EQ(fleet_->RpcOf(p).failed_calls(), 0u);
    EXPECT_EQ(fleet_->RpcOf(p).retries_issued(), 0u);
    EXPECT_EQ(fleet_->RpcOf(p).hedges_issued(), 0u);
    EXPECT_EQ(fleet_->RpcOf(p).timeouts_fired(), 0u);
    EXPECT_EQ(fleet_->RpcOf(p).cancelled_attempts(), 0u);
    EXPECT_EQ(fleet_->RpcOf(p).wasted_seconds(), 0.0);
    EXPECT_EQ(fleet_->EngineOf(p).io_failures(), 0u);
    profiling::ResilienceReport report = profiling::ComputeResilienceReport(
        fleet_->TracesOf(p), fleet_->NamesOf(p));
    EXPECT_EQ(report.retry_spans, 0u);
    EXPECT_EQ(report.hedge_spans, 0u);
    EXPECT_EQ(report.error_spans, 0u);
    EXPECT_EQ(report.queries_with_faulted_io, 0u);
    EXPECT_EQ(report.wasted_seconds, 0.0);
  }
}

TEST_F(GoldenBreakdownTest, NoDroppedHandles) {
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(fleet_->TracerOf(p).dropped_finishes(), 0u);
    EXPECT_EQ(fleet_->TracerOf(p).dropped_spans(), 0u);
    EXPECT_EQ(fleet_->TracerOf(p).open_traces(), 0u);
  }
}

}  // namespace
}  // namespace hyperprof::platforms
