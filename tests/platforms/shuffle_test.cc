#include "platforms/shuffle.h"

#include <gtest/gtest.h>

namespace hyperprof::platforms {
namespace {

class ShuffleTest : public ::testing::Test {
 protected:
  ShuffleTest() : rpc_(&simulator_, &network_, Rng(2)) {}

  ShuffleResult RunShuffle(ShuffleParams params, uint64_t seed) {
    auto op = std::make_shared<ShuffleOperation>(&simulator_, &rpc_, params,
                                                 Rng(seed));
    ShuffleResult result;
    bool done = false;
    op->Run(net::NodeId{0, 0, 1}, [&, op](const ShuffleResult& r) {
      result = r;
      done = true;
    });
    simulator_.Run();
    EXPECT_TRUE(done);
    return result;
  }

  sim::Simulator simulator_;
  net::NetworkModel network_;
  net::RpcSystem rpc_;
};

TEST_F(ShuffleTest, MovesAllBytes) {
  ShuffleParams params;
  params.num_mappers = 4;
  params.num_reducers = 4;
  params.bytes_per_mapper = 1 << 20;
  ShuffleResult result = RunShuffle(params, 3);
  // Partitioning truncates fractions; within 1% of the total.
  EXPECT_NEAR(static_cast<double>(result.total_bytes), 4.0 * (1 << 20),
              0.01 * 4 * (1 << 20));
  EXPECT_GT(result.makespan, SimTime::Zero());
  EXPECT_EQ(result.num_reducers, 4);
}

TEST_F(ShuffleTest, MakespanGrowsWithVolume) {
  ShuffleParams small;
  small.bytes_per_mapper = 1 << 20;
  ShuffleParams large = small;
  large.bytes_per_mapper = 64 << 20;
  SimTime small_time = RunShuffle(small, 5).makespan;
  SimTime large_time = RunShuffle(large, 5).makespan;
  EXPECT_GT(large_time, small_time * 4);
}

TEST_F(ShuffleTest, SkewConcentratesBytes) {
  ShuffleParams even;
  even.partition_zipf_s = 0.0;
  even.num_mappers = 1;  // single mapper: per-mapper hot spots visible
  even.num_reducers = 8;
  ShuffleParams skewed = even;
  skewed.partition_zipf_s = 2.0;
  double even_skew = RunShuffle(even, 7).SkewFactor();
  double skewed_skew = RunShuffle(skewed, 7).SkewFactor();
  EXPECT_LT(even_skew, 1.5);
  EXPECT_GT(skewed_skew, 2.0);
}

TEST_F(ShuffleTest, MakespanAtLeastSlowestReducerWork) {
  ShuffleParams params;
  params.num_mappers = 2;
  params.num_reducers = 2;
  params.bytes_per_mapper = 8 << 20;
  ShuffleResult result = RunShuffle(params, 9);
  // The hottest reducer must at least ingest and merge its input.
  double lower_bound_s =
      static_cast<double>(result.max_reducer_bytes) /
          params.ingest_bytes_per_second +
      static_cast<double>(result.max_reducer_bytes) /
          params.merge_bytes_per_second;
  EXPECT_GT(result.makespan.ToSeconds(), lower_bound_s);
}

TEST_F(ShuffleTest, DeterministicGivenSeeds) {
  ShuffleParams params;
  SimTime first, second;
  {
    sim::Simulator simulator;
    net::RpcSystem rpc(&simulator, &network_, Rng(2));
    auto op = std::make_shared<ShuffleOperation>(&simulator, &rpc, params,
                                                 Rng(11));
    op->Run(net::NodeId{0, 0, 1},
            [&, op](const ShuffleResult& r) { first = r.makespan; });
    simulator.Run();
  }
  {
    sim::Simulator simulator;
    net::RpcSystem rpc(&simulator, &network_, Rng(2));
    auto op = std::make_shared<ShuffleOperation>(&simulator, &rpc, params,
                                                 Rng(11));
    op->Run(net::NodeId{0, 0, 1},
            [&, op](const ShuffleResult& r) { second = r.makespan; });
    simulator.Run();
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hyperprof::platforms
