#include "platforms/platforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "profiling/categories.h"

namespace hyperprof::platforms {
namespace {

using profiling::BroadCategory;
using profiling::BroadOf;
using profiling::FnCategory;

class SpecTest : public ::testing::TestWithParam<int> {
 protected:
  PlatformSpec Spec() const {
    switch (GetParam()) {
      case 0: return SpannerSpec();
      case 1: return BigTableSpec();
      default: return BigQuerySpec();
    }
  }
};

TEST_P(SpecTest, QueryWeightsSumToOne) {
  PlatformSpec spec = Spec();
  double total = 0;
  for (const auto& type : spec.query_types) total += type.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(SpecTest, ComputeMixSumsToOne) {
  PlatformSpec spec = Spec();
  double total = 0;
  for (double w : spec.compute_mix) total += w;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_P(SpecTest, BroadSharesWithinPaperRanges) {
  // Section 5.2: core compute 18-36%, DC tax 32-40%, system tax 32-42%.
  PlatformSpec spec = Spec();
  double broad[3] = {0, 0, 0};
  for (size_t i = 0; i < profiling::kNumFnCategories; ++i) {
    broad[static_cast<int>(BroadOf(static_cast<FnCategory>(i)))] +=
        spec.compute_mix[i];
  }
  EXPECT_GE(broad[0], 0.18 - 1e-9);
  EXPECT_LE(broad[0], 0.36 + 1e-9);
  EXPECT_GE(broad[1], 0.32 - 1e-9);
  EXPECT_LE(broad[1], 0.40 + 1e-9);
  EXPECT_GE(broad[2], 0.32 - 1e-9);
  EXPECT_LE(broad[2], 0.42 + 1e-9);
}

TEST_P(SpecTest, EveryQueryTypeHasPhases) {
  PlatformSpec spec = Spec();
  EXPECT_GE(spec.query_types.size(), 4u);
  for (const auto& type : spec.query_types) {
    EXPECT_FALSE(type.phases.empty()) << type.name;
    // The first phase of a group must not be flagged as overlapping.
    EXPECT_FALSE(type.phases[0].overlap_with_previous) << type.name;
  }
}

TEST_P(SpecTest, HitTargetsOrdered) {
  PlatformSpec spec = Spec();
  EXPECT_GT(spec.ram_hit_target, 0.0);
  EXPECT_LE(spec.ram_hit_target, spec.ram_ssd_hit_target);
  EXPECT_LE(spec.ram_ssd_hit_target, 1.0);
}

TEST_P(SpecTest, MicroarchProfilesPopulated) {
  PlatformSpec spec = Spec();
  for (const auto& profile : spec.microarch) {
    EXPECT_GT(profile.ipc, 0.0);
    EXPECT_GT(profile.l1i_mpki, 0.0);
  }
}

std::string PlatformParamName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "Spanner";
    case 1: return "BigTable";
    default: return "BigQuery";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, SpecTest, ::testing::Values(0, 1, 2),
                         PlatformParamName);

TEST(SpecValuesTest, PaperStatedTaxFractions) {
  // Figure 5 values called out in the text.
  PlatformSpec spanner = SpannerSpec();
  PlatformSpec bigtable = BigTableSpec();
  PlatformSpec bigquery = BigQuerySpec();
  auto tax_fraction = [](const PlatformSpec& spec, FnCategory category) {
    double broad_total = 0;
    for (size_t i = 0; i < profiling::kNumFnCategories; ++i) {
      if (BroadOf(static_cast<FnCategory>(i)) ==
          BroadCategory::kDatacenterTax) {
        broad_total += spec.compute_mix[i];
      }
    }
    return spec.compute_mix[static_cast<size_t>(category)] / broad_total;
  };
  // RPC: 23% Spanner, 37% BigTable, 11% BigQuery.
  EXPECT_NEAR(tax_fraction(spanner, FnCategory::kRpc), 0.23, 1e-6);
  EXPECT_NEAR(tax_fraction(bigtable, FnCategory::kRpc), 0.37, 1e-6);
  EXPECT_NEAR(tax_fraction(bigquery, FnCategory::kRpc), 0.11, 1e-6);
  // Compression > 30% for BigTable and BigQuery.
  EXPECT_GT(tax_fraction(bigtable, FnCategory::kCompression), 0.30);
  EXPECT_GT(tax_fraction(bigquery, FnCategory::kCompression), 0.30);
  // Protobuf in 20-25% across platforms.
  for (const auto& spec : {spanner, bigtable, bigquery}) {
    double fraction = tax_fraction(spec, FnCategory::kProtobuf);
    EXPECT_GE(fraction, 0.20 - 1e-6);
    EXPECT_LE(fraction, 0.25 + 1e-6);
  }
}

TEST(SpecValuesTest, Table7ValuesExact) {
  // Spot-check the encoded Table 7 ground truth.
  PlatformSpec spanner = SpannerSpec();
  EXPECT_DOUBLE_EQ(spanner.microarch[0].ipc, 0.9);
  EXPECT_DOUBLE_EQ(spanner.microarch[1].ipc, 0.6);
  EXPECT_DOUBLE_EQ(spanner.microarch[2].l1i_mpki, 21.6);
  PlatformSpec bigquery = BigQuerySpec();
  EXPECT_DOUBLE_EQ(bigquery.microarch[0].ipc, 1.4);
  EXPECT_DOUBLE_EQ(bigquery.microarch[0].br_mpki, 2.0);
  PlatformSpec bigtable = BigTableSpec();
  EXPECT_DOUBLE_EQ(bigtable.microarch[2].dtlb_ld_mpki, 3.6);
}

TEST(SpecValuesTest, BigQueryUsesAnalyticsCategories) {
  PlatformSpec spec = BigQuerySpec();
  EXPECT_GT(spec.compute_mix[static_cast<size_t>(FnCategory::kFilter)], 0.0);
  EXPECT_EQ(spec.compute_mix[static_cast<size_t>(FnCategory::kRead)], 0.0);
  PlatformSpec spanner = SpannerSpec();
  EXPECT_GT(spanner.compute_mix[static_cast<size_t>(FnCategory::kRead)],
            0.0);
  EXPECT_EQ(spanner.compute_mix[static_cast<size_t>(FnCategory::kFilter)],
            0.0);
}

TEST(PhaseSpecTest, FactoryHelpers) {
  PhaseSpec compute = PhaseSpec::Compute(0.01, 0.3);
  EXPECT_EQ(compute.kind, PhaseSpec::Kind::kCompute);
  EXPECT_DOUBLE_EQ(compute.compute.mean_seconds, 0.01);
  IoPhaseSpec io;
  io.num_blocks = 5;
  PhaseSpec io_phase = PhaseSpec::Io(io);
  EXPECT_EQ(io_phase.kind, PhaseSpec::Kind::kIo);
  EXPECT_EQ(io_phase.io.num_blocks, 5);
  RemotePhaseSpec remote;
  remote.fanout = 3;
  PhaseSpec remote_phase = PhaseSpec::Remote(remote);
  EXPECT_EQ(remote_phase.kind, PhaseSpec::Kind::kRemote);
  EXPECT_EQ(remote_phase.remote.fanout, 3);
}

}  // namespace
}  // namespace hyperprof::platforms
