#include "profiling/aggregate.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

AttributedTime Time(double cpu, double io, double remote) {
  AttributedTime time;
  time.cpu = cpu;
  time.io = io;
  time.remote = remote;
  return time;
}

TEST(ClassifyTest, PaperThresholds) {
  EXPECT_EQ(ClassifyQuery(Time(0.7, 0.2, 0.1)), QueryGroup::kCpuHeavy);
  EXPECT_EQ(ClassifyQuery(Time(0.3, 0.5, 0.2)), QueryGroup::kIoHeavy);
  EXPECT_EQ(ClassifyQuery(Time(0.3, 0.2, 0.5)),
            QueryGroup::kRemoteWorkHeavy);
  EXPECT_EQ(ClassifyQuery(Time(0.5, 0.25, 0.25)), QueryGroup::kOthers);
}

TEST(ClassifyTest, CpuCheckedBeforeIoAndRemote) {
  // CPU 61%, IO 39%: CPU heavy even though IO > 30%.
  EXPECT_EQ(ClassifyQuery(Time(0.61, 0.39, 0.0)), QueryGroup::kCpuHeavy);
}

TEST(ClassifyTest, IoCheckedBeforeRemote) {
  EXPECT_EQ(ClassifyQuery(Time(0.2, 0.4, 0.4)), QueryGroup::kIoHeavy);
}

TEST(ClassifyTest, BoundaryIsExclusive) {
  // Exactly 60% CPU is NOT CPU heavy and exactly 30% remote is NOT
  // remote heavy ("more than" thresholds) -> Others.
  EXPECT_EQ(ClassifyQuery(Time(0.6, 0.1, 0.3)), QueryGroup::kOthers);
  // Just past both thresholds flips the classification.
  EXPECT_EQ(ClassifyQuery(Time(0.58, 0.1, 0.32)),
            QueryGroup::kRemoteWorkHeavy);
  EXPECT_EQ(ClassifyQuery(Time(0.62, 0.08, 0.3)), QueryGroup::kCpuHeavy);
}

TEST(ClassifyTest, ZeroTimeIsOthers) {
  EXPECT_EQ(ClassifyQuery(Time(0, 0, 0)), QueryGroup::kOthers);
}

TEST(ClassifyTest, CustomThresholds) {
  GroupThresholds thresholds;
  thresholds.cpu_heavy = 0.4;
  EXPECT_EQ(ClassifyQuery(Time(0.5, 0.25, 0.25), thresholds),
            QueryGroup::kCpuHeavy);
}

QueryTrace TraceWith(double cpu_us, double io_us, double remote_us) {
  QueryTrace trace;
  int64_t t = 0;
  auto add = [&](SpanKind kind, double us) {
    if (us <= 0) return;
    Span span;
    span.kind = kind;
    span.start = SimTime::Nanos(t);
    t += static_cast<int64_t>(us * 1000);
    span.end = SimTime::Nanos(t);
    trace.spans.push_back(span);
  };
  add(SpanKind::kCpu, cpu_us);
  add(SpanKind::kIo, io_us);
  add(SpanKind::kRemoteWork, remote_us);
  trace.end = SimTime::Nanos(t);
  return trace;
}

TEST(E2eBreakdownTest, GroupsAndSharesComputed) {
  std::vector<QueryTrace> traces;
  traces.push_back(TraceWith(90, 5, 5));    // CPU heavy
  traces.push_back(TraceWith(90, 5, 5));    // CPU heavy
  traces.push_back(TraceWith(10, 85, 5));   // IO heavy
  traces.push_back(TraceWith(10, 5, 85));   // remote heavy
  E2eBreakdownReport report = ComputeE2eBreakdown(traces);
  EXPECT_EQ(report.groups[0].query_count, 2u);
  EXPECT_EQ(report.groups[1].query_count, 1u);
  EXPECT_EQ(report.groups[2].query_count, 1u);
  EXPECT_EQ(report.groups[3].query_count, 0u);
  EXPECT_DOUBLE_EQ(report.QueryShare(QueryGroup::kCpuHeavy), 0.5);
  EXPECT_DOUBLE_EQ(report.QueryShare(QueryGroup::kIoHeavy), 0.25);
  EXPECT_EQ(report.overall.query_count, 4u);
}

TEST(E2eBreakdownTest, TimeWeightedVsQueryWeighted) {
  std::vector<QueryTrace> traces;
  // One enormous remote-bound query and many small CPU-bound ones.
  traces.push_back(TraceWith(10, 0, 10000));
  for (int i = 0; i < 9; ++i) traces.push_back(TraceWith(100, 0, 0));
  E2eBreakdownReport report = ComputeE2eBreakdown(traces);
  // Time-weighted: remote dominates.
  EXPECT_GT(report.overall.Fractions().remote, 0.9);
  // Query-weighted: CPU dominates (9 of 10 queries are pure CPU).
  EXPECT_GT(report.overall.MeanQueryFractions().cpu, 0.89);
}

TEST(E2eBreakdownTest, GroupFractionsSumToOne) {
  std::vector<QueryTrace> traces;
  traces.push_back(TraceWith(50, 30, 20));
  E2eBreakdownReport report = ComputeE2eBreakdown(traces);
  AttributedTime fractions = report.overall.Fractions();
  EXPECT_NEAR(fractions.cpu + fractions.io + fractions.remote, 1.0, 1e-9);
}

TEST(E2eBreakdownTest, EmptyTracesYieldEmptyReport) {
  E2eBreakdownReport report = ComputeE2eBreakdown({});
  EXPECT_EQ(report.overall.query_count, 0u);
  EXPECT_EQ(report.QueryShare(QueryGroup::kCpuHeavy), 0.0);
}

class CycleBreakdownTest : public ::testing::Test {
 protected:
  CycleBreakdownTest()
      : registry_(BuildFleetRegistry()),
        profiler_(SimTime::Micros(10), 3e9, Rng(1)) {}

  void Record(const std::string& symbol, int millis) {
    MicroarchProfile profile;
    profile.ipc = 1.0;
    profiler_.RecordActivity(symbol, SimTime::Millis(millis), profile);
  }

  FunctionRegistry registry_;
  CpuProfiler profiler_;
};

TEST_F(CycleBreakdownTest, FractionsTrackRecordedTime) {
  Record("snappylike::RawCompress", 30);   // Compression (DC tax)
  Record("paxos::Proposer::Propose", 50);  // Consensus (core)
  Record("do_syscall_64", 20);             // OS (system tax)
  CycleBreakdownReport report =
      ComputeCycleBreakdown(profiler_, registry_);
  EXPECT_NEAR(report.BroadFraction(BroadCategory::kCoreCompute), 0.5, 0.02);
  EXPECT_NEAR(report.BroadFraction(BroadCategory::kDatacenterTax), 0.3,
              0.02);
  EXPECT_NEAR(report.BroadFraction(BroadCategory::kSystemTax), 0.2, 0.02);
  EXPECT_NEAR(report.FineFractionOfTotal(FnCategory::kCompression), 0.3,
              0.02);
  EXPECT_NEAR(report.FineFractionWithinBroad(FnCategory::kCompression), 1.0,
              1e-9);
}

TEST_F(CycleBreakdownTest, UnknownSymbolsAreUncategorized) {
  Record("totally::unknown::fn", 10);
  CycleBreakdownReport report =
      ComputeCycleBreakdown(profiler_, registry_);
  EXPECT_NEAR(
      report.FineFractionOfTotal(FnCategory::kUncategorizedCore), 1.0,
      1e-9);
}

TEST_F(CycleBreakdownTest, BroadFractionsSumToOne) {
  Record("snappylike::RawCompress", 5);
  Record("std::sort", 5);
  Record("exec::HashJoinProbe::Probe", 5);
  CycleBreakdownReport report =
      ComputeCycleBreakdown(profiler_, registry_);
  double sum = report.BroadFraction(BroadCategory::kCoreCompute) +
               report.BroadFraction(BroadCategory::kDatacenterTax) +
               report.BroadFraction(BroadCategory::kSystemTax);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(CycleBreakdownTest, MicroarchReportSeparatesBroadCategories) {
  MicroarchProfile fast;
  fast.ipc = 1.4;
  MicroarchProfile slow;
  slow.ipc = 0.6;
  profiler_.RecordActivity("exec::HashJoinProbe::Probe", SimTime::Millis(40),
                           fast);
  profiler_.RecordActivity("snappylike::RawCompress", SimTime::Millis(40),
                           slow);
  MicroarchReport report = ComputeMicroarchReport(profiler_, registry_);
  EXPECT_NEAR(report.by_broad[0].Ipc(), 1.4, 0.05);  // core compute
  EXPECT_NEAR(report.by_broad[1].Ipc(), 0.6, 0.05);  // DC tax
  EXPECT_NEAR(report.overall.Ipc(), 1.0, 0.05);
}

TEST(PerTypeBreakdownTest, GroupsByTypeAndSortsByTotalTime) {
  NameInterner names;
  std::vector<QueryTrace> traces;
  QueryTrace big = TraceWith(1000, 500, 0);
  big.query_type = names.Intern("scan");
  QueryTrace small_a = TraceWith(10, 0, 0);
  small_a.query_type = names.Intern("point");
  QueryTrace small_b = TraceWith(20, 0, 0);
  small_b.query_type = names.Intern("point");
  traces = {small_a, big, small_b};
  auto rows = ComputePerTypeBreakdown(traces, names);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].query_type, "scan");  // largest total first
  EXPECT_EQ(rows[0].query_type_id, names.Find("scan"));
  EXPECT_EQ(rows[0].aggregate.query_count, 1u);
  EXPECT_EQ(rows[1].query_type, "point");
  EXPECT_EQ(rows[1].aggregate.query_count, 2u);
  EXPECT_NEAR(rows[1].aggregate.time.cpu, 30e-6, 1e-12);
  EXPECT_NEAR(rows[1].aggregate.MeanQueryFractions().cpu, 1.0, 1e-12);
}

TEST(PerTypeBreakdownTest, EmptyTraces) {
  NameInterner names;
  EXPECT_TRUE(ComputePerTypeBreakdown({}, names).empty());
}

TEST(BreakdownAccumulatorTest, StreamingMatchesBatchBitForBit) {
  NameInterner names;
  std::vector<QueryTrace> traces;
  traces.push_back(TraceWith(90, 5, 5));
  traces.push_back(TraceWith(10, 85, 5));
  traces.push_back(TraceWith(10, 5, 85));
  traces.push_back(TraceWith(33, 33, 34));
  traces[0].query_type = names.Intern("a");
  traces[1].query_type = names.Intern("b");
  traces[2].query_type = names.Intern("a");
  traces[3].query_type = names.Intern("c");

  BreakdownAccumulator acc;
  for (const QueryTrace& trace : traces) acc.Fold(trace);

  E2eBreakdownReport batch = ComputeE2eBreakdown(traces);
  for (size_t g = 0; g < kNumQueryGroups; ++g) {
    EXPECT_EQ(acc.e2e().groups[g].query_count, batch.groups[g].query_count);
    EXPECT_EQ(acc.e2e().groups[g].time.cpu, batch.groups[g].time.cpu);
    EXPECT_EQ(acc.e2e().groups[g].fraction_sum.io,
              batch.groups[g].fraction_sum.io);
  }
  EXPECT_EQ(acc.e2e().overall.time.remote, batch.overall.time.remote);

  auto streaming_rows = acc.TypeRows(names);
  auto batch_rows = ComputePerTypeBreakdown(traces, names);
  ASSERT_EQ(streaming_rows.size(), batch_rows.size());
  for (size_t i = 0; i < batch_rows.size(); ++i) {
    EXPECT_EQ(streaming_rows[i].query_type, batch_rows[i].query_type);
    EXPECT_EQ(streaming_rows[i].aggregate.time.cpu,
              batch_rows[i].aggregate.time.cpu);
    EXPECT_EQ(streaming_rows[i].aggregate.fraction_sum.remote,
              batch_rows[i].aggregate.fraction_sum.remote);
    EXPECT_EQ(streaming_rows[i].aggregate.query_count,
              batch_rows[i].aggregate.query_count);
  }

  EXPECT_EQ(acc.EstimatedSyncFactor(), EstimateSyncFactor(traces));
  EXPECT_EQ(acc.traces_folded(), traces.size());
}

TEST(BreakdownAccumulatorTest, EmptyAccumulatorDefaults) {
  NameInterner names;
  BreakdownAccumulator acc;
  EXPECT_EQ(acc.e2e().overall.query_count, 0u);
  EXPECT_TRUE(acc.TypeRows(names).empty());
  EXPECT_DOUBLE_EQ(acc.EstimatedSyncFactor(), 1.0);
}

TEST(SyncFactorTest, SerialSpansGiveFOne) {
  QueryTrace trace = TraceWith(100, 100, 0);
  EXPECT_DOUBLE_EQ(EstimateSyncFactor({trace}), 1.0);
}

TEST(SyncFactorTest, FullOverlapGivesFZero) {
  QueryTrace trace;
  Span cpu;
  cpu.kind = SpanKind::kCpu;
  cpu.start = SimTime::Zero();
  cpu.end = SimTime::Micros(100);
  Span io;
  io.kind = SpanKind::kIo;
  io.start = SimTime::Zero();
  io.end = SimTime::Micros(100);
  trace.spans = {cpu, io};
  EXPECT_DOUBLE_EQ(EstimateSyncFactor({trace}), 0.0);
}

TEST(SyncFactorTest, HalfOverlap) {
  QueryTrace trace;
  Span cpu;
  cpu.kind = SpanKind::kCpu;
  cpu.start = SimTime::Zero();
  cpu.end = SimTime::Micros(100);
  Span io;
  io.kind = SpanKind::kIo;
  io.start = SimTime::Micros(50);
  io.end = SimTime::Micros(150);
  trace.spans = {cpu, io};
  // Overlap 50us over min(100,100) -> f = 0.5.
  EXPECT_DOUBLE_EQ(EstimateSyncFactor({trace}), 0.5);
}

TEST(SyncFactorTest, SameKindOverlapDoesNotCount) {
  // Two parallel IO spans and a disjoint CPU span: f must be 1.
  QueryTrace trace;
  Span cpu;
  cpu.kind = SpanKind::kCpu;
  cpu.start = SimTime::Zero();
  cpu.end = SimTime::Micros(100);
  Span io1;
  io1.kind = SpanKind::kIo;
  io1.start = SimTime::Micros(100);
  io1.end = SimTime::Micros(200);
  Span io2 = io1;
  trace.spans = {cpu, io1, io2};
  EXPECT_DOUBLE_EQ(EstimateSyncFactor({trace}), 1.0);
}

TEST(SyncFactorTest, NoTracesDefaultsToOne) {
  EXPECT_DOUBLE_EQ(EstimateSyncFactor({}), 1.0);
}

TEST(QueryGroupTest, Names) {
  EXPECT_STREQ(QueryGroupName(QueryGroup::kCpuHeavy), "CPU Heavy");
  EXPECT_STREQ(QueryGroupName(QueryGroup::kRemoteWorkHeavy),
               "Remote Work Heavy");
}

TEST(ResilienceReportTest, CountsAnnotationSpansAndBucketsExtras) {
  NameInterner names;
  NameId io = names.Intern("dfs.read");
  NameId retry = names.Intern("dfs.retry");
  NameId hedge = names.Intern("dfs.hedge");
  NameId error = names.Intern("dfs.error");

  auto span = [](SpanKind kind, NameId name, double start, double end) {
    Span s;
    s.kind = kind;
    s.name = name;
    s.start = SimTime::FromSeconds(start);
    s.end = SimTime::FromSeconds(end);
    return s;
  };
  std::vector<QueryTrace> traces(3);
  // Clean query: one IO span, no annotations.
  traces[0].spans.push_back(span(SpanKind::kIo, io, 0.0, 1.0));
  // One retried IO: the first annotation carries the wasted extent, the
  // second extra attempt is a zero-length marker (engine convention).
  traces[1].spans.push_back(span(SpanKind::kIo, io, 0.0, 3.0));
  traces[1].spans.push_back(span(SpanKind::kIo, retry, 1.0, 3.0));
  traces[1].spans.push_back(span(SpanKind::kIo, retry, 3.0, 3.0));
  // One hedged IO plus one IO that exhausted its policy.
  traces[2].spans.push_back(span(SpanKind::kIo, io, 0.0, 1.0));
  traces[2].spans.push_back(span(SpanKind::kIo, hedge, 0.5, 1.0));
  traces[2].spans.push_back(span(SpanKind::kIo, error, 1.0, 1.0));

  ResilienceReport report = ComputeResilienceReport(traces, names);
  EXPECT_EQ(report.traced_queries, 3u);
  EXPECT_EQ(report.queries_with_faulted_io, 2u);
  EXPECT_EQ(report.retry_spans, 2u);
  EXPECT_EQ(report.hedge_spans, 1u);
  EXPECT_EQ(report.error_spans, 1u);
  EXPECT_DOUBLE_EQ(report.wasted_seconds, 2.0 + 0.0 + 0.5);
  EXPECT_EQ(report.extra_attempts_histogram[0], 1u);  // clean query
  EXPECT_EQ(report.extra_attempts_histogram[1], 1u);  // hedged query
  EXPECT_EQ(report.extra_attempts_histogram[2], 1u);  // double-retried
  EXPECT_DOUBLE_EQ(report.MeanWastedPerFaultedQuery(), 2.5 / 2.0);
}

TEST(ResilienceReportTest, MissingAnnotationNamesYieldZeroReport) {
  NameInterner names;  // "dfs.retry" & co never interned (pre-fault engine)
  std::vector<QueryTrace> traces(2);
  traces[0].spans.push_back(Span{});
  ResilienceReport report = ComputeResilienceReport(traces, names);
  EXPECT_EQ(report.traced_queries, 2u);
  EXPECT_EQ(report.queries_with_faulted_io, 0u);
  EXPECT_EQ(report.retry_spans + report.hedge_spans + report.error_spans,
            0u);
  EXPECT_EQ(report.wasted_seconds, 0.0);
  EXPECT_EQ(report.MeanWastedPerFaultedQuery(), 0.0);
}

}  // namespace
}  // namespace hyperprof::profiling
