// Edge cases for AttributeTrace: degenerate spans, coincident boundaries,
// policy rank ties, and scratch reuse. These pin down behavior the fleet
// tests only exercise implicitly, so a future sweep rewrite can't silently
// change attribution at the corners.
#include "profiling/tracer.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

QueryTrace MakeTrace(std::vector<Span> spans) {
  QueryTrace trace;
  trace.trace_id = 1;
  trace.spans = std::move(spans);
  return trace;
}

Span MakeSpan(SpanKind kind, int64_t start_us, int64_t end_us) {
  Span span;
  span.kind = kind;
  span.start = SimTime::Micros(start_us);
  span.end = SimTime::Micros(end_us);
  return span;
}

TEST(AttributionEdgeTest, AllSpansZeroLengthYieldZero) {
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 10, 10),
      MakeSpan(SpanKind::kIo, 20, 20),
      MakeSpan(SpanKind::kRemoteWork, 30, 30),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_EQ(time.Total(), 0.0);
}

TEST(AttributionEdgeTest, InvertedSpanIsTreatedAsZeroLength) {
  // end < start must contribute nothing, not negative time.
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kIo, 100, 40),
      MakeSpan(SpanKind::kCpu, 0, 10),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_EQ(time.io, 0.0);
  EXPECT_NEAR(time.cpu, 10e-6, 1e-12);
}

TEST(AttributionEdgeTest, ZeroLengthSpanInsideActiveIntervalIsInert) {
  // A zero-length remote "blip" inside a CPU span must not split or steal
  // any of the CPU interval, even though remote outranks CPU.
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 100),
      MakeSpan(SpanKind::kRemoteWork, 50, 50),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.cpu, 100e-6, 1e-12);
  EXPECT_EQ(time.remote, 0.0);
}

TEST(AttributionEdgeTest, IdenticalBoundariesAcrossKinds) {
  // Two spans with identical [start, end): the higher-precedence kind takes
  // the whole interval, exactly once.
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kIo, 0, 80),
      MakeSpan(SpanKind::kRemoteWork, 0, 80),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.remote, 80e-6, 1e-12);
  EXPECT_EQ(time.io, 0.0);
  EXPECT_NEAR(time.Total(), 80e-6, 1e-12);
}

TEST(AttributionEdgeTest, BackToBackSpansShareOneBoundary) {
  // End of one span coincides with start of the next: no gap, no overlap,
  // no double count at the shared instant.
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 50),
      MakeSpan(SpanKind::kIo, 50, 120),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.cpu, 50e-6, 1e-12);
  EXPECT_NEAR(time.io, 70e-6, 1e-12);
}

TEST(AttributionEdgeTest, DeeplyNestedSameKindCountsWallClockOnce) {
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kIo, 0, 100),
      MakeSpan(SpanKind::kIo, 10, 90),
      MakeSpan(SpanKind::kIo, 20, 80),
      MakeSpan(SpanKind::kIo, 30, 70),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.io, 100e-6, 1e-12);
}

TEST(AttributionEdgeTest, StaircaseOverlapsOfSameKind) {
  // Overlapping chain io[0,60), io[40,100): union is [0,100).
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kIo, 0, 60),
      MakeSpan(SpanKind::kIo, 40, 100),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.io, 100e-6, 1e-12);
}

TEST(AttributionEdgeTest, RankTieBreaksByKindOrderCpuIoRemote) {
  // With equal ranks the sweep keeps the first best it finds scanning
  // cpu -> io -> remote, so CPU wins a full three-way tie.
  AttributionPolicy all_tied;
  all_tied.cpu_rank = 0;
  all_tied.io_rank = 0;
  all_tied.remote_rank = 0;
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 100),
      MakeSpan(SpanKind::kIo, 0, 100),
      MakeSpan(SpanKind::kRemoteWork, 0, 100),
  });
  AttributedTime time = AttributeTrace(trace, all_tied);
  EXPECT_NEAR(time.cpu, 100e-6, 1e-12);
  EXPECT_EQ(time.io, 0.0);
  EXPECT_EQ(time.remote, 0.0);
}

TEST(AttributionEdgeTest, PartialRankTiePrefersLowerKindIndex) {
  // io and remote tied at rank 0, cpu worse: IO wins where both overlap
  // because it scans before remote; remote keeps its exclusive tail.
  AttributionPolicy policy;
  policy.cpu_rank = 1;
  policy.io_rank = 0;
  policy.remote_rank = 0;
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kIo, 0, 60),
      MakeSpan(SpanKind::kRemoteWork, 0, 100),
  });
  AttributedTime time = AttributeTrace(trace, policy);
  EXPECT_NEAR(time.io, 60e-6, 1e-12);
  EXPECT_NEAR(time.remote, 40e-6, 1e-12);
}

TEST(AttributionEdgeTest, UnsortedSpansMatchSortedSpans) {
  // The nearly-sorted fast path must agree with the sort fallback.
  std::vector<Span> sorted = {
      MakeSpan(SpanKind::kCpu, 0, 30),
      MakeSpan(SpanKind::kIo, 20, 70),
      MakeSpan(SpanKind::kRemoteWork, 60, 90),
      MakeSpan(SpanKind::kCpu, 85, 120),
  };
  std::vector<Span> shuffled = {sorted[3], sorted[1], sorted[0], sorted[2]};
  AttributedTime a = AttributeTrace(MakeTrace(sorted));
  AttributedTime b = AttributeTrace(MakeTrace(shuffled));
  EXPECT_EQ(a.cpu, b.cpu);
  EXPECT_EQ(a.io, b.io);
  EXPECT_EQ(a.remote, b.remote);
}

TEST(AttributionEdgeTest, ScratchReuseAcrossDifferentTraceShapes) {
  // One scratch serving a big trace, then a small one, then an empty one
  // must give the same answers as fresh scratch each time.
  AttributionScratch scratch;
  std::vector<QueryTrace> traces;
  traces.push_back(MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 10), MakeSpan(SpanKind::kIo, 5, 25),
      MakeSpan(SpanKind::kRemoteWork, 20, 40), MakeSpan(SpanKind::kCpu, 35, 60),
      MakeSpan(SpanKind::kIo, 55, 80), MakeSpan(SpanKind::kRemoteWork, 0, 3),
  }));
  traces.push_back(MakeTrace({MakeSpan(SpanKind::kIo, 7, 11)}));
  traces.push_back(MakeTrace({}));
  traces.push_back(MakeTrace({
      MakeSpan(SpanKind::kRemoteWork, 100, 90),  // inverted
      MakeSpan(SpanKind::kCpu, 0, 50),
  }));
  AttributionPolicy policy;  // paper default
  for (const QueryTrace& trace : traces) {
    AttributedTime reused = AttributeTrace(trace, policy, scratch);
    AttributedTime fresh = AttributeTrace(trace, policy);
    EXPECT_EQ(reused.cpu, fresh.cpu);
    EXPECT_EQ(reused.io, fresh.io);
    EXPECT_EQ(reused.remote, fresh.remote);
  }
}

TEST(AttributionEdgeTest, ScratchCapacityGrowsButResultsStayCorrect) {
  AttributionScratch scratch;
  // Seed the scratch with a large trace so later small traces run inside
  // leftover capacity.
  std::vector<Span> big;
  for (int i = 0; i < 64; ++i) {
    big.push_back(MakeSpan(SpanKind::kCpu, i * 10, i * 10 + 8));
  }
  AttributeTrace(MakeTrace(big), AttributionPolicy(), scratch);
  size_t capacity = scratch.boundaries.capacity();
  QueryTrace small = MakeTrace({MakeSpan(SpanKind::kIo, 0, 5)});
  AttributedTime time = AttributeTrace(small, AttributionPolicy(), scratch);
  EXPECT_NEAR(time.io, 5e-6, 1e-12);
  EXPECT_EQ(scratch.boundaries.capacity(), capacity);  // no reallocation
}

}  // namespace
}  // namespace hyperprof::profiling
