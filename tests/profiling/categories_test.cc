#include "profiling/categories.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

TEST(CategoriesTest, EveryCategoryHasAUniqueName) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumFnCategories; ++i) {
    std::string name = FnCategoryName(static_cast<FnCategory>(i));
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
  }
}

TEST(CategoriesTest, BroadNames) {
  EXPECT_STREQ(BroadCategoryName(BroadCategory::kCoreCompute),
               "Core Compute");
  EXPECT_STREQ(BroadCategoryName(BroadCategory::kDatacenterTax),
               "Datacenter Taxes");
  EXPECT_STREQ(BroadCategoryName(BroadCategory::kSystemTax), "System Taxes");
}

TEST(CategoriesTest, BroadOfMatchesPaperTables) {
  // Table 2 members are datacenter taxes.
  for (FnCategory category :
       {FnCategory::kCompression, FnCategory::kCryptography,
        FnCategory::kDataMovement, FnCategory::kMemAllocation,
        FnCategory::kProtobuf, FnCategory::kRpc}) {
    EXPECT_EQ(BroadOf(category), BroadCategory::kDatacenterTax);
  }
  // Table 3 members are system taxes.
  for (FnCategory category :
       {FnCategory::kEdac, FnCategory::kFileSystems,
        FnCategory::kOtherMemOps, FnCategory::kMultithreading,
        FnCategory::kNetworking, FnCategory::kOperatingSystems,
        FnCategory::kStl, FnCategory::kMiscSystem}) {
    EXPECT_EQ(BroadOf(category), BroadCategory::kSystemTax);
  }
  // Tables 4 and 5 members are core compute.
  for (FnCategory category :
       {FnCategory::kRead, FnCategory::kWrite, FnCategory::kConsensus,
        FnCategory::kAggregate, FnCategory::kFilter, FnCategory::kJoin}) {
    EXPECT_EQ(BroadOf(category), BroadCategory::kCoreCompute);
  }
}

TEST(CategoriesTest, CategoriesOfPartitionsTheEnum) {
  size_t total = 0;
  for (int b = 0; b < 3; ++b) {
    auto members = CategoriesOf(static_cast<BroadCategory>(b));
    total += members.size();
    for (FnCategory category : members) {
      EXPECT_EQ(BroadOf(category), static_cast<BroadCategory>(b));
    }
  }
  EXPECT_EQ(total, kNumFnCategories);
}

TEST(CategoriesTest, PaperCategoryCounts) {
  EXPECT_EQ(CategoriesOf(BroadCategory::kDatacenterTax).size(), 6u);
  EXPECT_EQ(CategoriesOf(BroadCategory::kSystemTax).size(), 8u);
  EXPECT_EQ(CategoriesOf(BroadCategory::kCoreCompute).size(), 15u);
}

}  // namespace
}  // namespace hyperprof::profiling
