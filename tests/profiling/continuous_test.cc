#include "profiling/continuous.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperprof::profiling {
namespace {

ContinuousOptions SmallOptions() {
  ContinuousOptions options;
  options.window = SimTime::Millis(10);
  options.history_size = 32;
  return options;
}

AttributedTime Attr(double cpu, double io, double remote) {
  AttributedTime time;
  time.cpu = cpu;
  time.io = io;
  time.remote = remote;
  return time;
}

TEST(ContinuousProfilerTest, BucketsByVirtualFinishTime) {
  ContinuousProfiler profiler(SmallOptions());
  profiler.Observe(SimTime::Millis(1), SimTime::Micros(500),
                   Attr(0.0003, 0.0001, 0.0001));
  profiler.Observe(SimTime::Millis(9), SimTime::Micros(300),
                   Attr(0.0002, 0.0, 0.0001));
  profiler.Observe(SimTime::Millis(12), SimTime::Micros(800),
                   Attr(0.0004, 0.0002, 0.0002));
  profiler.Finalize();

  EXPECT_EQ(profiler.observed_queries(), 3u);
  EXPECT_EQ(profiler.first_window(), 0);
  EXPECT_EQ(profiler.last_window(), 1);
  ASSERT_NE(profiler.WindowAt(0), nullptr);
  ASSERT_NE(profiler.WindowAt(1), nullptr);
  EXPECT_EQ(profiler.WindowAt(2), nullptr);

  const WindowSlot& w0 = *profiler.WindowAt(0);
  EXPECT_EQ(w0.queries, 2u);
  EXPECT_EQ(w0.total_nanos[static_cast<size_t>(WindowCategory::kLatency)],
            SimTime::Micros(800).nanos());
  EXPECT_EQ(w0.total_nanos[static_cast<size_t>(WindowCategory::kCpu)],
            500000);  // llround((0.0003 + 0.0002) * 1e9)
  const WindowSlot& w1 = *profiler.WindowAt(1);
  EXPECT_EQ(w1.queries, 1u);
  EXPECT_EQ(w1.total_nanos[static_cast<size_t>(WindowCategory::kLatency)],
            SimTime::Micros(800).nanos());
  EXPECT_EQ(profiler.WindowsInHistory(), 2u);
}

TEST(ContinuousProfilerTest, BudgetOverrunsFlagAnomalies) {
  ContinuousOptions options = SmallOptions();
  options.budget[static_cast<size_t>(WindowCategory::kCpu)] =
      SimTime::Micros(100);
  ContinuousProfiler profiler(options);
  // Window 0: 250us of CPU — blows the 100us budget.
  profiler.Observe(SimTime::Millis(2), SimTime::Micros(250),
                   Attr(0.00025, 0.0, 0.0));
  // Window 1: 50us of CPU — inside budget.
  profiler.Observe(SimTime::Millis(14), SimTime::Micros(50),
                   Attr(0.00005, 0.0, 0.0));
  profiler.Finalize();

  const BudgetStat& cpu = profiler.budget_stat(WindowCategory::kCpu);
  EXPECT_EQ(cpu.windows_evaluated, 2u);
  EXPECT_EQ(cpu.overruns, 1u);
  EXPECT_EQ(cpu.worst_window, 0);
  EXPECT_EQ(cpu.worst_total_nanos, 250000);
  ASSERT_EQ(profiler.anomalies().size(), 1u);
  const WindowAnomaly& anomaly = profiler.anomalies()[0];
  EXPECT_EQ(anomaly.window, 0);
  EXPECT_EQ(anomaly.category, WindowCategory::kCpu);
  EXPECT_EQ(anomaly.total_nanos, 250000);
  EXPECT_EQ(anomaly.budget_nanos, 100000);
  // Unbudgeted categories never overrun.
  EXPECT_EQ(profiler.budget_stat(WindowCategory::kLatency).overruns, 0u);
}

TEST(ContinuousProfilerTest, AnomalyLogIsBounded) {
  ContinuousOptions options = SmallOptions();
  options.max_anomalies = 3;
  options.budget[static_cast<size_t>(WindowCategory::kLatency)] =
      SimTime::Nanos(1);
  ContinuousProfiler profiler(options);
  for (int w = 0; w < 8; ++w) {
    profiler.Observe(SimTime::Millis(10 * w + 1), SimTime::Micros(100),
                     Attr(0.0, 0.0, 0.0));
  }
  profiler.Finalize();
  EXPECT_EQ(profiler.budget_stat(WindowCategory::kLatency).overruns, 8u);
  EXPECT_EQ(profiler.anomalies().size(), 3u);
  EXPECT_EQ(profiler.anomalies_dropped(), 5u);
}

TEST(ContinuousProfilerTest, LateObservationsAreCountedNotFolded) {
  ContinuousProfiler profiler(SmallOptions());
  profiler.Observe(SimTime::Millis(25), SimTime::Micros(100),
                   Attr(0.0001, 0.0, 0.0));
  // Window 2 is open; windows < 2 are sealed. An observation landing in
  // window 0 must be dropped, not folded into an already-judged window.
  profiler.Observe(SimTime::Millis(5), SimTime::Micros(100),
                   Attr(0.0001, 0.0, 0.0));
  profiler.Finalize();
  EXPECT_EQ(profiler.late_observations(), 1u);
  EXPECT_EQ(profiler.observed_queries(), 1u);
  EXPECT_EQ(profiler.WindowAt(0), nullptr);
}

TEST(ContinuousProfilerTest, RingEvictsOldestWindows) {
  ContinuousOptions options = SmallOptions();
  options.history_size = 4;
  ContinuousProfiler profiler(options);
  for (int w = 0; w < 10; ++w) {
    profiler.Observe(SimTime::Millis(10 * w + 1), SimTime::Micros(100),
                     Attr(0.0, 0.0, 0.0));
  }
  profiler.Finalize();
  EXPECT_EQ(profiler.WindowsInHistory(), 4u);
  EXPECT_EQ(profiler.windows_evicted(), 6u);
  EXPECT_EQ(profiler.WindowAt(5), nullptr);
  EXPECT_NE(profiler.WindowAt(9), nullptr);
  // Evaluation happened for every window before its slot was reused.
  EXPECT_EQ(profiler.budget_stat(WindowCategory::kLatency).windows_evaluated,
            10u);
}

TEST(ContinuousProfilerTest, RollingQuantileSpansHistory) {
  ContinuousProfiler profiler(SmallOptions());
  for (int i = 0; i < 100; ++i) {
    double latency_s = 1e-4 * (1 + i % 10);
    profiler.Observe(SimTime::Millis(i), SimTime::FromSeconds(latency_s),
                     Attr(latency_s, 0.0, 0.0));
  }
  profiler.Finalize();
  double p50 = profiler.RollingQuantile(WindowCategory::kLatency, 0.5);
  double p99 = profiler.RollingQuantile(WindowCategory::kLatency, 0.99);
  EXPECT_GT(p50, 1e-4);
  EXPECT_LT(p50, 1e-3);
  EXPECT_GT(p99, p50);
}

TEST(ContinuousProfilerDeathTest, MergeRejectsMismatchedWindow) {
  ContinuousOptions a = SmallOptions();
  ContinuousOptions b = SmallOptions();
  b.window = SimTime::Millis(20);
  ContinuousProfiler merged(a);
  ContinuousProfiler shard(b);
  EXPECT_DEATH(merged.MergeFrom(shard), "window width mismatch");
}

TEST(ContinuousProfilerDeathTest, MergeRejectsMismatchedBudget) {
  ContinuousOptions a = SmallOptions();
  ContinuousOptions b = SmallOptions();
  b.budget[0] = SimTime::Micros(1);
  ContinuousProfiler merged(a);
  ContinuousProfiler shard(b);
  EXPECT_DEATH(merged.MergeFrom(shard), "budget mismatch");
}

// The acceptance contract: N deferred worker shards merged at the barrier
// must reproduce the fused streaming aggregation exactly — window totals,
// sketch bucket counts, percentiles, budget stats, and the anomaly log —
// for any shard count and any assignment of queries to shards.
TEST(ContinuousProfilerTest, ShardMergeMatchesFusedExactly) {
  Rng rng(31);
  for (int round = 0; round < 12; ++round) {
    ContinuousOptions options = SmallOptions();
    options.budget[static_cast<size_t>(WindowCategory::kCpu)] =
        SimTime::Micros(400);
    options.budget[static_cast<size_t>(WindowCategory::kLatency)] =
        SimTime::Millis(2);

    size_t shards = 1 + rng.NextBounded(7);
    ContinuousProfiler fused(options);
    std::vector<ContinuousProfiler> workers;
    ContinuousOptions worker_options = options;
    worker_options.defer_evaluation = true;
    for (size_t s = 0; s < shards; ++s) workers.emplace_back(worker_options);

    // Completion times arrive nondecreasing at the fused profiler (as
    // from a tracer); each query lands on a random shard.
    int64_t now_us = 0;
    int queries = 200 + static_cast<int>(rng.NextBounded(400));
    for (int i = 0; i < queries; ++i) {
      now_us += static_cast<int64_t>(rng.NextBounded(900));
      SimTime end = SimTime::Micros(now_us);
      SimTime latency = SimTime::Micros(1 + rng.NextBounded(3000));
      AttributedTime at = Attr(rng.NextExponential(2e-4),
                               rng.NextExponential(1e-4),
                               rng.NextExponential(5e-5));
      fused.Observe(end, latency, at);
      workers[rng.NextBounded(shards)].Observe(end, latency, at);
    }
    fused.Finalize();

    ContinuousProfiler merged(options);
    size_t start = rng.NextBounded(shards);  // rotate the merge order
    for (size_t s = 0; s < shards; ++s) {
      merged.MergeFrom(workers[(start + s) % shards]);
    }
    merged.Finalize();

    EXPECT_EQ(merged.observed_queries(), fused.observed_queries());
    EXPECT_EQ(merged.first_window(), fused.first_window());
    EXPECT_EQ(merged.last_window(), fused.last_window());
    EXPECT_EQ(merged.windows_evicted(), 0u);
    EXPECT_EQ(merged.merge_drops(), 0u);
    for (int64_t w = fused.first_window(); w <= fused.last_window(); ++w) {
      const WindowSlot* fw = fused.WindowAt(w);
      const WindowSlot* mw = merged.WindowAt(w);
      ASSERT_EQ(fw == nullptr, mw == nullptr) << "window " << w;
      if (fw == nullptr) continue;
      EXPECT_EQ(mw->queries, fw->queries) << "window " << w;
      for (size_t c = 0; c < kNumWindowCategories; ++c) {
        EXPECT_EQ(mw->total_nanos[c], fw->total_nanos[c])
            << "window " << w << " category " << c;
        EXPECT_EQ(mw->sketches[c].bucket_counts(),
                  fw->sketches[c].bucket_counts())
            << "window " << w << " category " << c;
        EXPECT_EQ(mw->sketches[c].underflow(), fw->sketches[c].underflow());
      }
    }
    for (size_t c = 0; c < kNumWindowCategories; ++c) {
      WindowCategory cat = static_cast<WindowCategory>(c);
      const BudgetStat& fb = fused.budget_stat(cat);
      const BudgetStat& mb = merged.budget_stat(cat);
      EXPECT_EQ(mb.windows_evaluated, fb.windows_evaluated);
      EXPECT_EQ(mb.overruns, fb.overruns);
      EXPECT_EQ(mb.worst_total_nanos, fb.worst_total_nanos);
      EXPECT_EQ(mb.worst_window, fb.worst_window);
      for (double q : {0.1, 0.5, 0.9, 0.99}) {
        EXPECT_DOUBLE_EQ(merged.RollingQuantile(cat, q),
                         fused.RollingQuantile(cat, q));
      }
    }
    ASSERT_EQ(merged.anomalies().size(), fused.anomalies().size());
    EXPECT_EQ(merged.anomalies_dropped(), fused.anomalies_dropped());
    for (size_t i = 0; i < fused.anomalies().size(); ++i) {
      EXPECT_EQ(merged.anomalies()[i].window, fused.anomalies()[i].window);
      EXPECT_EQ(merged.anomalies()[i].category,
                fused.anomalies()[i].category);
      EXPECT_EQ(merged.anomalies()[i].total_nanos,
                fused.anomalies()[i].total_nanos);
    }
  }
}

TEST(ContinuousProfilerTest, FinalizeIsIdempotent) {
  ContinuousProfiler profiler(SmallOptions());
  profiler.Observe(SimTime::Millis(1), SimTime::Micros(100),
                   Attr(0.0001, 0.0, 0.0));
  profiler.Finalize();
  uint64_t evaluated =
      profiler.budget_stat(WindowCategory::kLatency).windows_evaluated;
  profiler.Finalize();
  EXPECT_EQ(profiler.budget_stat(WindowCategory::kLatency).windows_evaluated,
            evaluated);
}

TEST(ContinuousProfilerTest, EmptyProfilerIsInert) {
  ContinuousProfiler profiler(SmallOptions());
  profiler.Finalize();
  EXPECT_EQ(profiler.observed_queries(), 0u);
  EXPECT_EQ(profiler.WindowsInHistory(), 0u);
  EXPECT_EQ(profiler.first_window(), -1);
  EXPECT_DOUBLE_EQ(profiler.RollingQuantile(WindowCategory::kCpu, 0.5), 0.0);
  EXPECT_GT(profiler.memory_bytes(), 0u);
}

}  // namespace
}  // namespace hyperprof::profiling
