#include "profiling/microarch.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

MicroarchProfile SampleProfile() {
  return MicroarchProfile{0.9, 5.4, 12.4, 4.2, 0.6, 0.2, 0.8};
}

TEST(SynthesizeTest, InstructionsTrackIpc) {
  Rng rng(1);
  MicroarchProfile profile = SampleProfile();
  double total_instr = 0, total_cycles = 0;
  for (int i = 0; i < 2000; ++i) {
    CounterDelta delta = SynthesizeCounters(profile, 1000000, rng);
    total_instr += static_cast<double>(delta.instructions);
    total_cycles += static_cast<double>(delta.cycles);
  }
  EXPECT_NEAR(total_instr / total_cycles, profile.ipc, 0.01);
}

TEST(SynthesizeTest, MissRatesTrackMpki) {
  Rng rng(2);
  MicroarchProfile profile = SampleProfile();
  CounterRollup rollup;
  for (int i = 0; i < 3000; ++i) {
    rollup.Add(SynthesizeCounters(profile, 1000000, rng));
  }
  EXPECT_NEAR(rollup.BrMpki(), profile.br_mpki, 0.1);
  EXPECT_NEAR(rollup.L1iMpki(), profile.l1i_mpki, 0.2);
  EXPECT_NEAR(rollup.L2iMpki(), profile.l2i_mpki, 0.1);
  EXPECT_NEAR(rollup.LlcMpki(), profile.llc_mpki, 0.05);
  EXPECT_NEAR(rollup.ItlbMpki(), profile.itlb_mpki, 0.05);
  EXPECT_NEAR(rollup.DtlbLdMpki(), profile.dtlb_ld_mpki, 0.05);
}

TEST(SynthesizeTest, ZeroMpkiYieldsZeroMisses) {
  Rng rng(3);
  MicroarchProfile profile;
  profile.ipc = 1.0;  // all MPKIs zero
  CounterDelta delta = SynthesizeCounters(profile, 100000, rng);
  EXPECT_EQ(delta.br_misses, 0u);
  EXPECT_EQ(delta.llc_misses, 0u);
}

TEST(SynthesizeTest, AtLeastOneInstruction) {
  Rng rng(4);
  MicroarchProfile profile;
  profile.ipc = 1e-9;
  CounterDelta delta = SynthesizeCounters(profile, 10, rng);
  EXPECT_GE(delta.instructions, 1u);
}

TEST(CounterRollupTest, EmptyIsZero) {
  CounterRollup rollup;
  EXPECT_EQ(rollup.Ipc(), 0.0);
  EXPECT_EQ(rollup.BrMpki(), 0.0);
}

TEST(CounterRollupTest, AddAccumulatesExactly) {
  CounterRollup rollup;
  CounterDelta delta;
  delta.cycles = 1000;
  delta.instructions = 700;
  delta.br_misses = 7;
  rollup.Add(delta);
  rollup.Add(delta);
  EXPECT_EQ(rollup.cycles(), 2000u);
  EXPECT_EQ(rollup.instructions(), 1400u);
  EXPECT_DOUBLE_EQ(rollup.Ipc(), 0.7);
  EXPECT_DOUBLE_EQ(rollup.BrMpki(), 10.0);
}

TEST(CounterRollupTest, MergeEqualsAdds) {
  CounterDelta delta;
  delta.cycles = 500;
  delta.instructions = 400;
  delta.l1i_misses = 3;
  CounterRollup a, b;
  a.Add(delta);
  b.Add(delta);
  a.Merge(b);
  EXPECT_EQ(a.cycles(), 1000u);
  EXPECT_EQ(a.instructions(), 800u);
}

TEST(CounterRollupTest, ToProfileRoundTrips) {
  CounterRollup rollup;
  CounterDelta delta;
  delta.cycles = 10000;
  delta.instructions = 9000;
  delta.br_misses = 45;
  delta.dtlb_ld_misses = 18;
  rollup.Add(delta);
  MicroarchProfile profile = rollup.ToProfile();
  EXPECT_DOUBLE_EQ(profile.ipc, 0.9);
  EXPECT_DOUBLE_EQ(profile.br_mpki, 5.0);
  EXPECT_DOUBLE_EQ(profile.dtlb_ld_mpki, 2.0);
}

}  // namespace
}  // namespace hyperprof::profiling
