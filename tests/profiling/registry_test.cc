#include "profiling/function_registry.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

TEST(RegistryTest, ExactMatchWins) {
  FunctionRegistry registry;
  registry.AddExact("foo::Bar", FnCategory::kRpc);
  registry.AddPrefix("foo::", FnCategory::kStl);
  EXPECT_EQ(registry.Classify("foo::Bar"), FnCategory::kRpc);
  EXPECT_EQ(registry.Classify("foo::Other"), FnCategory::kStl);
}

TEST(RegistryTest, LongestPrefixWins) {
  FunctionRegistry registry;
  registry.AddPrefix("a::", FnCategory::kStl);
  registry.AddPrefix("a::b::", FnCategory::kRpc);
  EXPECT_EQ(registry.Classify("a::b::F"), FnCategory::kRpc);
  EXPECT_EQ(registry.Classify("a::c::F"), FnCategory::kStl);
}

TEST(RegistryTest, UnknownIsUncategorized) {
  FunctionRegistry registry;
  EXPECT_EQ(registry.Classify("mystery_function"),
            FnCategory::kUncategorizedCore);
}

TEST(RegistryTest, FleetRegistryCoversEveryCategoryButUncategorized) {
  FunctionRegistry registry = BuildFleetRegistry();
  for (size_t i = 0; i < kNumFnCategories; ++i) {
    FnCategory category = static_cast<FnCategory>(i);
    if (category == FnCategory::kUncategorizedCore) continue;
    EXPECT_FALSE(registry.SymbolsFor(category).empty())
        << "no symbols for " << FnCategoryName(category);
  }
}

TEST(RegistryTest, FleetRegistryClassifiesItsOwnSymbols) {
  FunctionRegistry registry = BuildFleetRegistry();
  for (size_t i = 0; i < kNumFnCategories; ++i) {
    FnCategory category = static_cast<FnCategory>(i);
    for (const std::string& symbol : registry.SymbolsFor(category)) {
      EXPECT_EQ(registry.Classify(symbol), category) << symbol;
    }
  }
}

TEST(RegistryTest, FleetRegistryPrefixFallbacks) {
  FunctionRegistry registry = BuildFleetRegistry();
  EXPECT_EQ(registry.Classify("paxos::SomeNewFunction"),
            FnCategory::kConsensus);
  EXPECT_EQ(registry.Classify("std::sort"), FnCategory::kStl);
  EXPECT_EQ(registry.Classify("tcp_v4_rcv"), FnCategory::kNetworking);
  EXPECT_EQ(registry.Classify("Spanner::internal::unknown_leaf"),
            FnCategory::kUncategorizedCore);
}

TEST(RegistryTest, RuleCountsExposed) {
  FunctionRegistry registry = BuildFleetRegistry();
  EXPECT_GT(registry.exact_rules(), 80u);
  EXPECT_GT(registry.prefix_rules(), 5u);
}

}  // namespace
}  // namespace hyperprof::profiling
