#include "profiling/report.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

TEST(ReportTest, E2eReportRendersAllGroups) {
  E2eBreakdownReport report;
  report.groups[0].time.cpu = 1.0;
  report.groups[0].fraction_sum.cpu = 1.0;
  report.groups[0].query_count = 1;
  report.overall = report.groups[0];
  std::string out = RenderE2eReport(report).ToString();
  EXPECT_NE(out.find("CPU Heavy"), std::string::npos);
  EXPECT_NE(out.find("Remote Work Heavy"), std::string::npos);
  EXPECT_NE(out.find("Overall (query-weighted)"), std::string::npos);
  EXPECT_NE(out.find("Overall (time-weighted)"), std::string::npos);
}

TEST(ReportTest, BroadCycleReportListsThreeClasses) {
  CycleBreakdownReport report;
  report.cycles_by_category[static_cast<size_t>(FnCategory::kRead)] = 50;
  report.cycles_by_category[static_cast<size_t>(FnCategory::kRpc)] = 30;
  report.cycles_by_category[static_cast<size_t>(FnCategory::kStl)] = 20;
  std::string out = RenderBroadCycleReport(report).ToString();
  EXPECT_NE(out.find("Core Compute"), std::string::npos);
  EXPECT_NE(out.find("50.0"), std::string::npos);
  EXPECT_NE(out.find("30.0"), std::string::npos);
}

TEST(ReportTest, FineCycleReportSkipsEmptyCategories) {
  CycleBreakdownReport report;
  report.cycles_by_category[static_cast<size_t>(FnCategory::kProtobuf)] =
      10;
  std::string out =
      RenderFineCycleReport(report, BroadCategory::kDatacenterTax)
          .ToString();
  EXPECT_NE(out.find("Protobuf"), std::string::npos);
  EXPECT_EQ(out.find("Compression"), std::string::npos);
}

TEST(ReportTest, MicroarchReportHasFourScopes) {
  MicroarchReport report;
  CounterDelta delta;
  delta.cycles = 1000;
  delta.instructions = 700;
  report.overall.Add(delta);
  report.by_broad[0].Add(delta);
  std::string out = RenderMicroarchReport(report).ToString();
  EXPECT_NE(out.find("Overall"), std::string::npos);
  EXPECT_NE(out.find("System Taxes"), std::string::npos);
  EXPECT_NE(out.find("0.70"), std::string::npos);
}

TEST(ReportTest, TopSymbolsRankedByCycles) {
  CpuProfiler profiler(SimTime::Micros(10), 3e9, Rng(1));
  MicroarchProfile profile;
  profile.ipc = 1.0;
  profiler.RecordActivity("snappylike::RawCompress", SimTime::Millis(30),
                          profile);
  profiler.RecordActivity("do_syscall_64", SimTime::Millis(10), profile);
  FunctionRegistry registry = BuildFleetRegistry();
  std::string out = RenderTopSymbols(profiler, registry, 10).ToString();
  size_t compress_pos = out.find("snappylike::RawCompress");
  size_t syscall_pos = out.find("do_syscall_64");
  ASSERT_NE(compress_pos, std::string::npos);
  ASSERT_NE(syscall_pos, std::string::npos);
  EXPECT_LT(compress_pos, syscall_pos);  // more cycles -> ranked first
  EXPECT_NE(out.find("Compression"), std::string::npos);
}

TEST(ReportTest, TopSymbolsHonorsLimit) {
  CpuProfiler profiler(SimTime::Micros(10), 3e9, Rng(2));
  MicroarchProfile profile;
  profile.ipc = 1.0;
  for (int i = 0; i < 10; ++i) {
    profiler.RecordActivity("fn" + std::to_string(i), SimTime::Millis(5),
                            profile);
  }
  FunctionRegistry registry;
  TextTable table = RenderTopSymbols(profiler, registry, 3);
  // Header + separator + 3 rows.
  std::string out = table.ToString();
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
}

}  // namespace
}  // namespace hyperprof::profiling
