#include "profiling/sampler.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

MicroarchProfile FlatProfile() {
  MicroarchProfile profile;
  profile.ipc = 1.0;
  return profile;
}

TEST(SamplerTest, LongActivityYieldsProportionalSamples) {
  CpuProfiler profiler(SimTime::Micros(100), 3e9, Rng(1));
  profiler.RecordActivity("f", SimTime::Millis(10), FlatProfile());
  // 10ms / 100us = 100 samples (+-1 from the fractional draw).
  EXPECT_NEAR(static_cast<double>(profiler.samples().size()), 100.0, 1.0);
}

TEST(SamplerTest, ShortActivitiesSampleProportionallyInExpectation) {
  CpuProfiler profiler(SimTime::Micros(100), 3e9, Rng(2));
  // 10k activities of 10us = 1s of CPU; expect ~10000 * 0.1 = 1000 samples.
  for (int i = 0; i < 10000; ++i) {
    profiler.RecordActivity("short", SimTime::Micros(10), FlatProfile());
  }
  EXPECT_NEAR(static_cast<double>(profiler.samples().size()), 1000.0, 100.0);
}

TEST(SamplerTest, RelativeCategoryWeightsRecovered) {
  CpuProfiler profiler(SimTime::Micros(50), 3e9, Rng(3));
  // "hot" gets 3x the CPU time of "cold".
  for (int i = 0; i < 3000; ++i) {
    profiler.RecordActivity("hot", SimTime::Micros(30), FlatProfile());
  }
  for (int i = 0; i < 1000; ++i) {
    profiler.RecordActivity("cold", SimTime::Micros(30), FlatProfile());
  }
  uint32_t hot_id = profiler.InternSymbol("hot");
  size_t hot = 0;
  for (const CpuSample& sample : profiler.samples()) {
    if (sample.symbol_id == hot_id) ++hot;
  }
  double fraction = static_cast<double>(hot) / profiler.samples().size();
  EXPECT_NEAR(fraction, 0.75, 0.04);
}

TEST(SamplerTest, ZeroDurationIgnored) {
  CpuProfiler profiler(SimTime::Micros(100), 3e9, Rng(4));
  profiler.RecordActivity("f", SimTime::Zero(), FlatProfile());
  EXPECT_TRUE(profiler.samples().empty());
  EXPECT_EQ(profiler.activities_recorded(), 0u);
}

TEST(SamplerTest, CyclesPerSampleMatchesPeriodAndFrequency) {
  CpuProfiler profiler(SimTime::Micros(500), 2e9, Rng(5));
  EXPECT_DOUBLE_EQ(profiler.CyclesPerSample(), 1e6);
  profiler.RecordActivity("f", SimTime::Millis(5), FlatProfile());
  ASSERT_FALSE(profiler.samples().empty());
  EXPECT_EQ(profiler.samples()[0].counters.cycles, 1000000u);
}

TEST(SamplerTest, SymbolsInterned) {
  CpuProfiler profiler(SimTime::Micros(10), 3e9, Rng(6));
  profiler.RecordActivity("alpha", SimTime::Millis(1), FlatProfile());
  profiler.RecordActivity("beta", SimTime::Millis(1), FlatProfile());
  profiler.RecordActivity("alpha", SimTime::Millis(1), FlatProfile());
  uint32_t alpha = profiler.InternSymbol("alpha");
  uint32_t beta = profiler.InternSymbol("beta");
  EXPECT_NE(alpha, beta);
  EXPECT_EQ(profiler.SymbolName(alpha), "alpha");
  EXPECT_EQ(profiler.SymbolName(beta), "beta");
}

TEST(SamplerTest, TotalCpuTimeAccumulates) {
  CpuProfiler profiler(SimTime::Micros(100), 3e9, Rng(7));
  profiler.RecordActivity("f", SimTime::Millis(2), FlatProfile());
  profiler.RecordActivity("g", SimTime::Millis(3), FlatProfile());
  EXPECT_EQ(profiler.total_cpu_time(), SimTime::Millis(5));
  EXPECT_EQ(profiler.activities_recorded(), 2u);
}

}  // namespace
}  // namespace hyperprof::profiling
