#include "profiling/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "workloads/protowire/wire.h"

namespace hyperprof::profiling {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  QueryTrace SampleTrace(uint64_t id) {
    QueryTrace trace;
    trace.trace_id = id;
    trace.platform = names_.Intern("Spanner");
    trace.query_type = names_.Intern("point_read");
    Span cpu;
    cpu.kind = SpanKind::kCpu;
    cpu.name = names_.Intern("compute");
    cpu.start = SimTime::Micros(100);
    cpu.end = SimTime::Micros(350);
    Span io;
    io.kind = SpanKind::kIo;
    io.name = names_.Intern("dfs.read");
    io.start = SimTime::Micros(350);
    io.end = SimTime::Micros(500);
    trace.spans = {cpu, io};
    return trace;
  }

  NameInterner names_;
};

TEST_F(TraceExportTest, EmitsCompleteEventsWithTimestamps) {
  std::string json = ExportChromeTrace({SampleTrace(1)}, names_);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"CPU\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"IO\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250.000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":\"Spanner\""), std::string::npos);
}

TEST_F(TraceExportTest, ValidJsonArrayShape) {
  std::string json =
      ExportChromeTrace({SampleTrace(1), SampleTrace(2)}, names_);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceExportTest, HonorsMaxQueries) {
  std::vector<QueryTrace> traces;
  for (uint64_t i = 1; i <= 10; ++i) traces.push_back(SampleTrace(i));
  std::string json = ExportChromeTrace(traces, names_, /*max_queries=*/3);
  // 3 thread-name metadata events, not 10.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = json.find("thread_name", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 3u);
}

TEST_F(TraceExportTest, EscapesSpecialCharacters) {
  QueryTrace trace = SampleTrace(1);
  trace.spans[0].name = names_.Intern("we\"ird\\name");
  std::string json = ExportChromeTrace({trace}, names_);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST_F(TraceExportTest, EmptyTracesYieldEmptyArray) {
  EXPECT_EQ(ExportChromeTrace({}, names_), "[\n\n]\n");
}

TEST_F(TraceExportTest, UnknownIdsRenderAsEmptyNames) {
  QueryTrace trace = SampleTrace(1);
  trace.spans[0].name = 9999;  // never interned
  std::string json = ExportChromeTrace({trace}, names_);
  EXPECT_NE(json.find("\"name\":\"\""), std::string::npos);
}

TEST_F(TraceExportTest, WritesFile) {
  std::string path = ::testing::TempDir() + "/trace_export_test.json";
  ASSERT_TRUE(WriteChromeTrace({SampleTrace(1)}, names_, path));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[16] = {};
  size_t read = std::fread(buffer, 1, 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  ASSERT_EQ(read, 1u);
  EXPECT_EQ(buffer[0], '[');
}

// A trace with a two-level span hierarchy for the flamegraph exporters:
// compute (root, 250us) -> dfs.read (child, 150us). Self time of compute
// is therefore 100us.
class FlamegraphExportTest : public TraceExportTest {
 protected:
  QueryTrace NestedTrace(uint64_t id) {
    QueryTrace trace;
    trace.trace_id = id;
    trace.platform = names_.Intern("Spanner");
    trace.query_type = names_.Intern("point_read");
    Span root;
    root.span_id = 1;
    root.kind = SpanKind::kCpu;
    root.name = names_.Intern("compute");
    root.start = SimTime::Micros(100);
    root.end = SimTime::Micros(350);
    Span child;
    child.span_id = 2;
    child.parent_id = 1;
    child.kind = SpanKind::kIo;
    child.name = names_.Intern("dfs.read");
    child.start = SimTime::Micros(200);
    child.end = SimTime::Micros(350);
    trace.spans = {root, child};
    return trace;
  }
};

TEST_F(FlamegraphExportTest, CollapsedStacksComputeSelfTime) {
  std::string folded = ExportCollapsedStacks({NestedTrace(1)}, names_);
  // Root self = 250us - 150us child = 100us = 100000ns; the child keeps
  // its full 150000ns.
  EXPECT_NE(folded.find("Spanner;point_read;compute 100000\n"),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("Spanner;point_read;compute;dfs.read 150000\n"),
            std::string::npos)
      << folded;
}

TEST_F(FlamegraphExportTest, CollapsedStacksAggregateAcrossTraces) {
  std::vector<QueryTrace> traces = {NestedTrace(1), NestedTrace(2),
                                    NestedTrace(3)};
  std::string folded = ExportCollapsedStacks(traces, names_);
  EXPECT_NE(folded.find("Spanner;point_read;compute 300000\n"),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("Spanner;point_read;compute;dfs.read 450000\n"),
            std::string::npos)
      << folded;
}

TEST_F(FlamegraphExportTest, CollapsedStacksAreDeterministicallySorted) {
  std::vector<QueryTrace> traces = {NestedTrace(1), SampleTrace(2)};
  std::string a = ExportCollapsedStacks(traces, names_);
  std::reverse(traces.begin(), traces.end());
  std::string b = ExportCollapsedStacks(traces, names_);
  EXPECT_EQ(a, b);
  // Lexicographic stack order: each line's stack prefix is >= the previous.
  std::string prev;
  size_t pos = 0;
  while (pos < a.size()) {
    size_t eol = a.find('\n', pos);
    std::string line = a.substr(pos, eol - pos);
    std::string stack = line.substr(0, line.rfind(' '));
    EXPECT_GE(stack, prev);
    prev = stack;
    pos = eol + 1;
  }
}

TEST_F(FlamegraphExportTest, NegativeSelfTimeClampsToZero) {
  // Overlapping children that sum past the parent duration must clamp the
  // parent's self time at zero, never go negative.
  QueryTrace trace = NestedTrace(1);
  Span extra = trace.spans[1];
  extra.span_id = 3;
  extra.name = names_.Intern("dfs.write");
  extra.start = SimTime::Micros(100);
  extra.end = SimTime::Micros(350);
  trace.spans.push_back(extra);
  std::string folded = ExportCollapsedStacks({trace}, names_);
  EXPECT_NE(folded.find("Spanner;point_read;compute 0\n"), std::string::npos)
      << folded;
}

TEST_F(FlamegraphExportTest, PprofProfileParsesBack) {
  std::vector<uint8_t> bytes =
      ExportPprofProfile({NestedTrace(1)}, names_, /*time_nanos=*/777);

  size_t sample_types = 0, samples = 0, locations = 0, functions = 0;
  std::vector<std::string> string_table;
  uint64_t time_nanos = 0;
  std::vector<std::vector<uint64_t>> sample_values;

  protowire::WireReader reader(bytes.data(), bytes.size());
  while (!reader.AtEnd()) {
    uint32_t field = 0;
    protowire::WireType type{};
    ASSERT_TRUE(reader.GetTag(&field, &type));
    if (field == 9) {
      ASSERT_TRUE(reader.GetVarint(&time_nanos));
      continue;
    }
    ASSERT_EQ(type, protowire::WireType::kLengthDelimited);
    const uint8_t* data = nullptr;
    size_t size = 0;
    ASSERT_TRUE(reader.GetLengthDelimited(&data, &size));
    switch (field) {
      case 1: ++sample_types; break;
      case 2: {
        ++samples;
        // Second packed field inside a sample is the value list.
        protowire::WireReader sample(data, size);
        uint32_t sfield = 0;
        protowire::WireType stype{};
        while (!sample.AtEnd()) {
          ASSERT_TRUE(sample.GetTag(&sfield, &stype));
          const uint8_t* payload = nullptr;
          size_t payload_size = 0;
          ASSERT_TRUE(sample.GetLengthDelimited(&payload, &payload_size));
          if (sfield == 2) {
            protowire::WireReader values(payload, payload_size);
            std::vector<uint64_t> vs;
            uint64_t v = 0;
            while (!values.AtEnd()) {
              ASSERT_TRUE(values.GetVarint(&v));
              vs.push_back(v);
            }
            sample_values.push_back(vs);
          }
        }
        break;
      }
      case 4: ++locations; break;
      case 5: ++functions; break;
      case 6:
        string_table.emplace_back(reinterpret_cast<const char*>(data), size);
        break;
      default: FAIL() << "unexpected field " << field;
    }
  }

  EXPECT_EQ(sample_types, 2u);  // samples/count + time/nanoseconds
  EXPECT_EQ(samples, 2u);       // two unique stacks
  // Frames: Spanner, point_read, compute, dfs.read.
  EXPECT_EQ(locations, 4u);
  EXPECT_EQ(functions, 4u);
  EXPECT_EQ(time_nanos, 777u);
  ASSERT_FALSE(string_table.empty());
  EXPECT_EQ(string_table[0], "");  // profile.proto invariant
  for (const char* expected :
       {"samples", "count", "time", "nanoseconds", "Spanner", "point_read",
        "compute", "dfs.read"}) {
    EXPECT_NE(std::find(string_table.begin(), string_table.end(), expected),
              string_table.end())
        << "missing string " << expected;
  }
  // Each sample carries [samples, self_nanos] matching the folded output.
  ASSERT_EQ(sample_values.size(), 2u);
  std::map<uint64_t, uint64_t> by_nanos;
  for (const auto& vs : sample_values) {
    ASSERT_EQ(vs.size(), 2u);
    by_nanos[vs[1]] = vs[0];
  }
  EXPECT_EQ(by_nanos.at(100000u), 1u);  // compute self
  EXPECT_EQ(by_nanos.at(150000u), 1u);  // dfs.read
}

TEST_F(FlamegraphExportTest, PprofIsDeterministic) {
  std::vector<QueryTrace> traces = {NestedTrace(1), SampleTrace(2)};
  std::vector<uint8_t> a = ExportPprofProfile(traces, names_);
  std::reverse(traces.begin(), traces.end());
  std::vector<uint8_t> b = ExportPprofProfile(traces, names_);
  EXPECT_EQ(a, b);
}

TEST_F(FlamegraphExportTest, WritesFoldedAndPprofFiles) {
  std::string folded_path = ::testing::TempDir() + "/stacks.folded";
  std::string pprof_path = ::testing::TempDir() + "/profile.pb";
  ASSERT_TRUE(WriteCollapsedStacks({NestedTrace(1)}, names_, folded_path));
  ASSERT_TRUE(WritePprofProfile({NestedTrace(1)}, names_, pprof_path));
  std::FILE* file = std::fopen(folded_path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[8] = {};
  size_t read = std::fread(buffer, 1, 7, file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, read), "Spanner");
  std::remove(folded_path.c_str());
  std::remove(pprof_path.c_str());
}

}  // namespace
}  // namespace hyperprof::profiling
