#include "profiling/trace_export.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  QueryTrace SampleTrace(uint64_t id) {
    QueryTrace trace;
    trace.trace_id = id;
    trace.platform = names_.Intern("Spanner");
    trace.query_type = names_.Intern("point_read");
    Span cpu;
    cpu.kind = SpanKind::kCpu;
    cpu.name = names_.Intern("compute");
    cpu.start = SimTime::Micros(100);
    cpu.end = SimTime::Micros(350);
    Span io;
    io.kind = SpanKind::kIo;
    io.name = names_.Intern("dfs.read");
    io.start = SimTime::Micros(350);
    io.end = SimTime::Micros(500);
    trace.spans = {cpu, io};
    return trace;
  }

  NameInterner names_;
};

TEST_F(TraceExportTest, EmitsCompleteEventsWithTimestamps) {
  std::string json = ExportChromeTrace({SampleTrace(1)}, names_);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"CPU\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"IO\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250.000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":\"Spanner\""), std::string::npos);
}

TEST_F(TraceExportTest, ValidJsonArrayShape) {
  std::string json =
      ExportChromeTrace({SampleTrace(1), SampleTrace(2)}, names_);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceExportTest, HonorsMaxQueries) {
  std::vector<QueryTrace> traces;
  for (uint64_t i = 1; i <= 10; ++i) traces.push_back(SampleTrace(i));
  std::string json = ExportChromeTrace(traces, names_, /*max_queries=*/3);
  // 3 thread-name metadata events, not 10.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = json.find("thread_name", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 3u);
}

TEST_F(TraceExportTest, EscapesSpecialCharacters) {
  QueryTrace trace = SampleTrace(1);
  trace.spans[0].name = names_.Intern("we\"ird\\name");
  std::string json = ExportChromeTrace({trace}, names_);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST_F(TraceExportTest, EmptyTracesYieldEmptyArray) {
  EXPECT_EQ(ExportChromeTrace({}, names_), "[\n\n]\n");
}

TEST_F(TraceExportTest, UnknownIdsRenderAsEmptyNames) {
  QueryTrace trace = SampleTrace(1);
  trace.spans[0].name = 9999;  // never interned
  std::string json = ExportChromeTrace({trace}, names_);
  EXPECT_NE(json.find("\"name\":\"\""), std::string::npos);
}

TEST_F(TraceExportTest, WritesFile) {
  std::string path = ::testing::TempDir() + "/trace_export_test.json";
  ASSERT_TRUE(WriteChromeTrace({SampleTrace(1)}, names_, path));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[16] = {};
  size_t read = std::fread(buffer, 1, 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  ASSERT_EQ(read, 1u);
  EXPECT_EQ(buffer[0], '[');
}

}  // namespace
}  // namespace hyperprof::profiling
