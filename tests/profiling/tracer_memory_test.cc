// Steady-state allocation tests for the trace pipeline. This binary
// replaces the global allocator with a counting shim; it must stay its own
// test executable so the override can't leak into other suites.
//
// The property under test: once a reservoir-mode Tracer has warmed up on a
// workload shape (slot table grown, span vectors at capacity, breakdown
// rows discovered, reservoir full), further Start/AddSpan/Finish cycles
// perform ZERO heap allocations.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "profiling/tracer.h"
#include "profiling/aggregate.h"
#include "profiling/continuous.h"

namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace hyperprof::profiling {
namespace {

constexpr int kSpansPerQuery = 6;

// One ingest cycle: start, six spans, finish. Pure NameId API so the
// measured section never touches the interner's hash map growth path.
void RunQuery(Tracer& tracer, NameId platform, NameId type,
              const NameId* span_names, int64_t& now_us) {
  uint64_t id = tracer.StartQuery(platform, type, SimTime::Micros(now_us));
  for (int s = 0; s < kSpansPerQuery; ++s) {
    tracer.AddSpan(id, static_cast<SpanKind>(s % 3), span_names[s % 4],
                   SimTime::Micros(now_us + s * 10),
                   SimTime::Micros(now_us + s * 10 + 8));
  }
  tracer.FinishQuery(id, SimTime::Micros(now_us + 80));
  now_us += 3;
}

TEST(TracerMemoryTest, AllocationCounterIsLive) {
  uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  auto* probe = new std::vector<int>(128);
  uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  delete probe;
  EXPECT_GT(after, before);
}

TEST(TracerMemoryTest, SteadyStateIngestAllocatesNothing) {
  TracerOptions options;
  options.retention = TraceRetention::kSampleReservoir;
  options.reservoir_capacity = 64;
  Tracer tracer(1, Rng(21), options);
  NameId platform = tracer.names().Intern("P");
  NameId type = tracer.names().Intern("q");
  NameId span_names[4] = {
      tracer.names().Intern("compute"), tracer.names().Intern("dfs.read"),
      tracer.names().Intern("dfs.write"), tracer.names().Intern("consensus")};
  int64_t now_us = 0;

  // Warm-up: fill the reservoir, grow the slot table and span pools, let
  // the breakdown accumulator discover the type row.
  for (int i = 0; i < 2000; ++i) {
    RunQuery(tracer, platform, type, span_names, now_us);
  }

  uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    RunQuery(tracer, platform, type, span_names, now_us);
  }
  uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state ingest performed " << (after - before)
      << " heap allocations over 2000 queries";
  EXPECT_EQ(tracer.traces().size(), 64u);
  EXPECT_EQ(tracer.queries_finished(), 4000u);
}

TEST(TracerMemoryTest, SteadyStateWithConcurrentOpenQueries) {
  // K queries in flight at once, FIFO, like the fleet: slots must recycle
  // without per-query growth once the table reaches K entries.
  constexpr size_t kInFlight = 32;
  TracerOptions options;
  options.retention = TraceRetention::kSampleReservoir;
  options.reservoir_capacity = 16;
  Tracer tracer(1, Rng(22), options);
  NameId platform = tracer.names().Intern("P");
  NameId type = tracer.names().Intern("q");
  NameId span_name = tracer.names().Intern("compute");
  int64_t now_us = 0;

  std::vector<uint64_t> in_flight;
  in_flight.reserve(kInFlight * 2);
  auto pump = [&](int queries) {
    for (int i = 0; i < queries; ++i) {
      uint64_t id =
          tracer.StartQuery(platform, type, SimTime::Micros(now_us));
      tracer.AddSpan(id, SpanKind::kCpu, span_name, SimTime::Micros(now_us),
                     SimTime::Micros(now_us + 8));
      in_flight.push_back(id);
      if (in_flight.size() >= kInFlight) {
        tracer.FinishQuery(in_flight.front(), SimTime::Micros(now_us + 80));
        in_flight.erase(in_flight.begin());
      }
      now_us += 3;
    }
  };

  pump(1000);
  uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  pump(1000);
  uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(tracer.open_slot_capacity(), kInFlight);
}

TEST(TracerMemoryTest, WindowedPathAllocatesNothingAtSteadyState) {
  // The continuous-profiling extension of the steady-state guarantee: with
  // a windowed profiler attached to the tracer, ingest that crosses many
  // window boundaries — seal, budget evaluation, anomaly logging, ring
  // eviction — still performs zero heap allocations, and so do the
  // barrier-merge and rolling-quantile paths on preallocated instances.
  TracerOptions options;
  options.retention = TraceRetention::kSampleReservoir;
  options.reservoir_capacity = 64;
  Tracer tracer(1, Rng(24), options);

  ContinuousOptions continuous_options;
  continuous_options.window = SimTime::Micros(500);  // ~167 queries/window
  continuous_options.history_size = 8;               // forces ring eviction
  // A 1ns latency budget makes every window an overrun, driving the
  // anomaly-append path inside the measured section.
  continuous_options.budget[static_cast<size_t>(WindowCategory::kLatency)] =
      SimTime::Nanos(1);
  ContinuousProfiler continuous(continuous_options);
  tracer.set_continuous(&continuous);

  ContinuousOptions worker_options = continuous_options;
  worker_options.defer_evaluation = true;
  ContinuousProfiler worker(worker_options);
  ContinuousProfiler merged(continuous_options);

  NameId platform = tracer.names().Intern("P");
  NameId type = tracer.names().Intern("q");
  NameId span_names[4] = {
      tracer.names().Intern("compute"), tracer.names().Intern("dfs.read"),
      tracer.names().Intern("dfs.write"), tracer.names().Intern("consensus")};
  int64_t now_us = 0;

  for (int i = 0; i < 2000; ++i) {
    RunQuery(tracer, platform, type, span_names, now_us);
  }

  uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    RunQuery(tracer, platform, type, span_names, now_us);
    AttributedTime attributed;
    attributed.cpu = 1e-5;
    worker.Observe(SimTime::Micros(now_us), SimTime::Micros(80), attributed);
  }
  merged.MergeFrom(worker);
  merged.Finalize();
  double p99 = continuous.RollingQuantile(WindowCategory::kLatency, 0.99);
  uint64_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "windowed steady-state path performed " << (after - before)
      << " heap allocations over 2000 queries";
  EXPECT_GT(p99, 0.0);
  EXPECT_GT(continuous.observed_queries(), 0u);
  EXPECT_GT(continuous.windows_evicted(), 0u);  // the eviction path ran
  EXPECT_GT(continuous.budget_stat(WindowCategory::kLatency).overruns, 0u);
  EXPECT_EQ(merged.observed_queries(), 2000u);
  tracer.set_continuous(nullptr);
}

TEST(TracerMemoryTest, RetainAllModeGrowsAsExpected) {
  // Control: with kRetainAll the retained vector must keep allocating —
  // proves the zero above is the reservoir, not a dead counter.
  Tracer tracer(1, Rng(23));
  NameId platform = tracer.names().Intern("P");
  NameId type = tracer.names().Intern("q");
  NameId span_names[4] = {
      tracer.names().Intern("a"), tracer.names().Intern("b"),
      tracer.names().Intern("c"), tracer.names().Intern("d")};
  int64_t now_us = 0;
  for (int i = 0; i < 100; ++i) {
    RunQuery(tracer, platform, type, span_names, now_us);
  }
  uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    RunQuery(tracer, platform, type, span_names, now_us);
  }
  uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0u);
  EXPECT_EQ(tracer.traces().size(), 1100u);
}

TEST(TracerMemoryTest, SamplingIsDeterministicForFixedSeed) {
  // Two tracers with identical seeds and query streams must make identical
  // sampling decisions, retain identical traces, and fold identical
  // breakdowns — sampling must not depend on retention bookkeeping.
  auto run = [](TraceRetention retention) {
    TracerOptions options;
    options.retention = retention;
    options.reservoir_capacity = 32;
    Tracer tracer(5, Rng(99), options);
    NameId platform = tracer.names().Intern("P");
    NameId type_a = tracer.names().Intern("alpha");
    NameId type_b = tracer.names().Intern("beta");
    NameId span_name = tracer.names().Intern("compute");
    std::vector<uint64_t> handles;
    for (int i = 0; i < 5000; ++i) {
      uint64_t id = tracer.StartQuery(platform, i % 3 ? type_a : type_b,
                                      SimTime::Micros(i * 10));
      handles.push_back(id);
      if (id != Tracer::kNotSampled) {
        tracer.AddSpan(id, static_cast<SpanKind>(i % 3), span_name,
                       SimTime::Micros(i * 10), SimTime::Micros(i * 10 + 7));
        tracer.FinishQuery(id, SimTime::Micros(i * 10 + 9));
      }
    }
    return std::make_tuple(handles, tracer.queries_sampled(),
                           tracer.breakdown().e2e().overall.time.cpu,
                           tracer.breakdown().e2e().overall.fraction_sum.io);
  };

  auto a = run(TraceRetention::kRetainAll);
  auto b = run(TraceRetention::kRetainAll);
  EXPECT_EQ(a, b);

  // Retention mode must not perturb the sampling stream: same handles and
  // identical folded doubles either way.
  auto c = run(TraceRetention::kSampleReservoir);
  EXPECT_EQ(std::get<0>(a), std::get<0>(c));
  EXPECT_EQ(std::get<1>(a), std::get<1>(c));
  EXPECT_EQ(std::get<2>(a), std::get<2>(c));
  EXPECT_EQ(std::get<3>(a), std::get<3>(c));
}

}  // namespace
}  // namespace hyperprof::profiling
