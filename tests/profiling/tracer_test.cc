#include "profiling/tracer.h"

#include <gtest/gtest.h>

namespace hyperprof::profiling {
namespace {

QueryTrace MakeTrace(std::vector<Span> spans) {
  QueryTrace trace;
  trace.trace_id = 1;
  trace.spans = std::move(spans);
  return trace;
}

Span MakeSpan(SpanKind kind, int64_t start_us, int64_t end_us) {
  Span span;
  span.kind = kind;
  span.start = SimTime::Micros(start_us);
  span.end = SimTime::Micros(end_us);
  return span;
}

TEST(AttributeTest, DisjointSpansSumDirectly) {
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 100),
      MakeSpan(SpanKind::kIo, 100, 250),
      MakeSpan(SpanKind::kRemoteWork, 250, 300),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.cpu, 100e-6, 1e-12);
  EXPECT_NEAR(time.io, 150e-6, 1e-12);
  EXPECT_NEAR(time.remote, 50e-6, 1e-12);
}

TEST(AttributeTest, PaperPrecedenceRemoteOverIoOverCpu) {
  // All three active simultaneously: remote wins the whole interval.
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 100),
      MakeSpan(SpanKind::kIo, 0, 100),
      MakeSpan(SpanKind::kRemoteWork, 0, 100),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.remote, 100e-6, 1e-12);
  EXPECT_EQ(time.cpu, 0.0);
  EXPECT_EQ(time.io, 0.0);
}

TEST(AttributeTest, PartialOverlapSplitsAtBoundaries) {
  // CPU [0,100), IO [60,160): CPU gets [0,60), IO gets [60,160).
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 100),
      MakeSpan(SpanKind::kIo, 60, 160),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.cpu, 60e-6, 1e-12);
  EXPECT_NEAR(time.io, 100e-6, 1e-12);
}

TEST(AttributeTest, CustomPolicyCpuFirst) {
  AttributionPolicy policy;
  policy.cpu_rank = 0;
  policy.io_rank = 1;
  policy.remote_rank = 2;
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 100),
      MakeSpan(SpanKind::kIo, 0, 100),
  });
  AttributedTime time = AttributeTrace(trace, policy);
  EXPECT_NEAR(time.cpu, 100e-6, 1e-12);
  EXPECT_EQ(time.io, 0.0);
}

TEST(AttributeTest, GapsAttributeNothing) {
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 0, 50),
      MakeSpan(SpanKind::kCpu, 100, 150),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.Total(), 100e-6, 1e-12);
}

TEST(AttributeTest, NestedSameKindSpansDoNotDoubleCount) {
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kIo, 0, 100),
      MakeSpan(SpanKind::kIo, 20, 60),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_NEAR(time.io, 100e-6, 1e-12);
}

TEST(AttributeTest, ZeroLengthSpansIgnored) {
  QueryTrace trace = MakeTrace({
      MakeSpan(SpanKind::kCpu, 50, 50),
      MakeSpan(SpanKind::kIo, 0, 10),
  });
  AttributedTime time = AttributeTrace(trace);
  EXPECT_EQ(time.cpu, 0.0);
  EXPECT_NEAR(time.io, 10e-6, 1e-12);
}

TEST(AttributeTest, EmptyTraceIsZero) {
  QueryTrace trace;
  AttributedTime time = AttributeTrace(trace);
  EXPECT_EQ(time.Total(), 0.0);
}

TEST(TracerTest, SampleEveryQueryWhenRateIsOne) {
  Tracer tracer(1, Rng(1));
  for (int i = 0; i < 100; ++i) {
    uint64_t id = tracer.StartQuery("P", "q", SimTime::Zero());
    EXPECT_NE(id, Tracer::kNotSampled);
    tracer.FinishQuery(id, SimTime::Micros(10));
  }
  EXPECT_EQ(tracer.queries_sampled(), 100u);
  EXPECT_EQ(tracer.traces().size(), 100u);
}

TEST(TracerTest, SamplingRateApproximatelyOneInN) {
  Tracer tracer(10, Rng(2));
  for (int i = 0; i < 20000; ++i) {
    uint64_t id = tracer.StartQuery("P", "q", SimTime::Zero());
    tracer.FinishQuery(id, SimTime::Micros(1));
  }
  EXPECT_EQ(tracer.queries_seen(), 20000u);
  EXPECT_NEAR(static_cast<double>(tracer.queries_sampled()), 2000.0, 150.0);
}

TEST(TracerTest, UnsampledQueriesCostNothing) {
  Tracer tracer(1000000, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = tracer.StartQuery("P", "q", SimTime::Zero());
    tracer.AddSpan(id, SpanKind::kCpu, "x", SimTime::Zero(),
                   SimTime::Micros(1));
    tracer.FinishQuery(id, SimTime::Micros(1));
  }
  EXPECT_TRUE(tracer.traces().empty() || tracer.traces().size() < 5);
}

TEST(TracerTest, SpansAttachToCorrectTrace) {
  Tracer tracer(1, Rng(4));
  uint64_t a = tracer.StartQuery("P", "a", SimTime::Zero());
  uint64_t b = tracer.StartQuery("P", "b", SimTime::Zero());
  tracer.AddSpan(a, SpanKind::kCpu, "a-span", SimTime::Zero(),
                 SimTime::Micros(5));
  tracer.AddSpan(b, SpanKind::kIo, "b-span", SimTime::Zero(),
                 SimTime::Micros(7));
  tracer.FinishQuery(b, SimTime::Micros(7));
  tracer.FinishQuery(a, SimTime::Micros(5));
  ASSERT_EQ(tracer.traces().size(), 2u);
  const NameInterner& names = tracer.names();
  EXPECT_EQ(names.Name(tracer.traces()[0].query_type), "b");
  EXPECT_EQ(names.Name(tracer.traces()[0].spans[0].name), "b-span");
  EXPECT_EQ(names.Name(tracer.traces()[1].query_type), "a");
}

TEST(TracerTest, TraceRecordsMetadata) {
  Tracer tracer(1, Rng(5));
  uint64_t id = tracer.StartQuery("Spanner", "point_read",
                                  SimTime::Micros(100));
  tracer.FinishQuery(id, SimTime::Micros(400));
  const QueryTrace& trace = tracer.traces()[0];
  EXPECT_EQ(tracer.names().Name(trace.platform), "Spanner");
  EXPECT_EQ(tracer.names().Name(trace.query_type), "point_read");
  EXPECT_EQ(trace.start, SimTime::Micros(100));
  EXPECT_EQ(trace.end, SimTime::Micros(400));
}

TEST(TracerTest, InternedNamesAreStableAndDeduplicated) {
  Tracer tracer(1, Rng(6));
  uint64_t a = tracer.StartQuery("P", "q", SimTime::Zero());
  tracer.FinishQuery(a, SimTime::Micros(1));
  uint64_t b = tracer.StartQuery("P", "q", SimTime::Zero());
  tracer.FinishQuery(b, SimTime::Micros(1));
  ASSERT_EQ(tracer.traces().size(), 2u);
  EXPECT_EQ(tracer.traces()[0].platform, tracer.traces()[1].platform);
  EXPECT_EQ(tracer.traces()[0].query_type, tracer.traces()[1].query_type);
  EXPECT_EQ(tracer.names().size(), 2u);  // "P" and "q", stored once
}

TEST(TracerTest, UnknownFinishIsCountedNotFatal) {
  Tracer tracer(1, Rng(7));
  uint64_t id = tracer.StartQuery("P", "q", SimTime::Zero());
  tracer.FinishQuery(id, SimTime::Micros(1));
  // Double finish: the handle's slot generation no longer matches.
  tracer.FinishQuery(id, SimTime::Micros(2));
  // A handle that never existed.
  tracer.FinishQuery(0xdeadbeef00000007ull, SimTime::Micros(3));
  EXPECT_EQ(tracer.dropped_finishes(), 2u);
  EXPECT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.queries_finished(), 1u);
}

TEST(TracerTest, StaleSpanAfterFinishIsCountedNotFatal) {
  Tracer tracer(1, Rng(8));
  uint64_t id = tracer.StartQuery("P", "q", SimTime::Zero());
  tracer.FinishQuery(id, SimTime::Micros(1));
  tracer.AddSpan(id, SpanKind::kCpu, "late", SimTime::Zero(),
                 SimTime::Micros(1));
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  EXPECT_TRUE(tracer.traces()[0].spans.empty());
}

TEST(TracerTest, SlotsAreRecycledAcrossQueries) {
  Tracer tracer(1, Rng(9));
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = tracer.StartQuery("P", "q", SimTime::Zero());
    tracer.AddSpan(id, SpanKind::kCpu, "c", SimTime::Zero(),
                   SimTime::Micros(1));
    tracer.FinishQuery(id, SimTime::Micros(1));
  }
  // Only one query is ever open at a time, so one slot suffices.
  EXPECT_EQ(tracer.open_slot_capacity(), 1u);
  EXPECT_EQ(tracer.open_traces(), 0u);
}

TEST(TracerTest, HandlesFromRecycledSlotsStayDistinct) {
  Tracer tracer(1, Rng(10));
  uint64_t first = tracer.StartQuery("P", "q", SimTime::Zero());
  tracer.FinishQuery(first, SimTime::Micros(1));
  uint64_t second = tracer.StartQuery("P", "q", SimTime::Zero());
  EXPECT_NE(first, second);  // same slot, different generation
  // The stale handle must not touch the new occupant.
  tracer.AddSpan(first, SpanKind::kCpu, "stale", SimTime::Zero(),
                 SimTime::Micros(1));
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  tracer.FinishQuery(second, SimTime::Micros(2));
  EXPECT_TRUE(tracer.traces()[1].spans.empty());
}

TEST(TracerTest, ReservoirModeBoundsRetainedTraces) {
  TracerOptions options;
  options.retention = TraceRetention::kSampleReservoir;
  options.reservoir_capacity = 16;
  Tracer tracer(1, Rng(11), options);
  for (int i = 0; i < 500; ++i) {
    uint64_t id = tracer.StartQuery("P", "q", SimTime::Micros(i));
    tracer.AddSpan(id, SpanKind::kCpu, "c", SimTime::Micros(i),
                   SimTime::Micros(i + 1));
    tracer.FinishQuery(id, SimTime::Micros(i + 1));
  }
  EXPECT_EQ(tracer.traces().size(), 16u);
  EXPECT_EQ(tracer.queries_finished(), 500u);
}

TEST(SpanKindTest, Names) {
  EXPECT_STREQ(SpanKindName(SpanKind::kCpu), "CPU");
  EXPECT_STREQ(SpanKindName(SpanKind::kIo), "IO");
  EXPECT_STREQ(SpanKindName(SpanKind::kRemoteWork), "RemoteWork");
}

}  // namespace
}  // namespace hyperprof::profiling
