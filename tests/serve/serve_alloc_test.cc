// Pins the zero-allocation steady-state contract of the serving data
// plane (DESIGN.md §16): once a connection and the engine behind it are
// warmed, pipelined query/response cycles through the real epoll daemon —
// recv, frame decode, batch admission, virtual-time completion, response
// serialization, sendmsg flush — must perform ZERO heap allocations.
//
// This binary replaces the global allocator with a counting shim (the
// tracer_memory_test / shard_group_test pattern); it must stay its own
// test executable so the override can't leak into other suites.
//
// The platform spec is crafted so the *engine* is also allocation-free in
// steady state: a single compute phase whose mean is far below the
// activity decomposition floor (no profiler activity draws), no worker
// pool (the finite-pool path rides a shared_ptr through sim::Resource),
// and a tracer sampling period larger than the test's traffic (no span
// storage). The daemon side needs no such staging — its zero-alloc
// guarantee is unconditional and separately accounted by serve_allocs().

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<uint64_t> g_allocation_count{0};
// Debug aid: set HYPERPROF_TRAP_ALLOC=1 and arm inside a measured window
// to dump a backtrace of each offending allocation site.
std::atomic<bool> g_trap_on_alloc{false};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (g_trap_on_alloc.load(std::memory_order_relaxed)) {
    g_trap_on_alloc.store(false, std::memory_order_relaxed);
    void* frames[32];
    const int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, STDERR_FILENO);
    g_trap_on_alloc.store(true, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "platforms/platforms.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hyperprof::serve {
namespace {

platforms::PlatformSpec SteadySpec() {
  platforms::PlatformSpec spec;
  spec.name = "steady";
  platforms::QueryTypeSpec type;
  type.name = "tiny";
  type.weight = 1.0;
  // Mean far below the 1ns decomposition floor: the compute phase
  // schedules its span without drawing any profiler activities.
  type.phases.push_back(platforms::PhaseSpec::Compute(1e-12, 0.0));
  spec.query_types.push_back(type);
  spec.compute_mix[0] = 1.0;
  spec.worker_cores = 0;      // infinite cores: no Resource round trip
  spec.block_space = 1 << 12;  // cheap DFS prewarm; no IO phases anyway
  return spec;
}

/**
 * Single-threaded harness: the test thread drives daemon.RunOnce()
 * itself, so the global allocation counter observes exactly the
 * client+daemon+engine work of each cycle.
 */
class SteadyStateHarness {
 public:
  SteadyStateHarness() : daemon_(HarnessOptions()) {
    daemon_.AddPlatform(SteadySpec());
    EXPECT_TRUE(daemon_.Listen());

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(daemon_.port());
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    // Client-side scratch is warmed up front: the test measures the
    // serving stack, not this harness.
    payload_.reserve(1024);
    outbuf_.reserve(1024);
    frame_.reserve(1024);
  }

  ~SteadyStateHarness() {
    if (fd_ >= 0) ::close(fd_);
    daemon_.Shutdown();
  }

  static ServerOptions HarnessOptions() {
    ServerOptions options;
    options.port = 0;
    // Fast virtual clock: ~picosecond virtual queries complete within one
    // RunOnce(1) wait.
    options.virtual_seconds_per_wall_second = 1000.0;
    options.front_door.max_in_flight = 16;
    // Never trace-sample: sampled queries allocate span storage.
    options.front_door.fleet.trace_sample_one_in = 1 << 30;
    return options;
  }

  /** One pipelined round trip. Allocation-free once warmed. */
  bool Cycle(RequestKind kind) {
    Request request;
    request.id = ++next_id_;
    request.kind = kind;
    request.platform = 0;
    payload_.clear();
    outbuf_.clear();
    EncodeRequest(request, payload_);
    EncodeFrame(payload_.data(), payload_.size(), outbuf_);
    size_t sent = 0;
    for (int spins = 0; spins < 100000; ++spins) {
      while (sent < outbuf_.size()) {
        const ssize_t n = ::send(fd_, outbuf_.data() + sent,
                                 outbuf_.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
          sent += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      daemon_.RunOnce(1);
      uint8_t buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n == 0) return false;
      if (n > 0) decoder_.Feed(buffer, static_cast<size_t>(n));
      const FrameDecoder::Status status = decoder_.Next(&frame_);
      if (status == FrameDecoder::Status::kNeedMore) continue;
      if (status != FrameDecoder::Status::kFrame) return false;
      Response response;
      return DecodeResponse(frame_.data(), frame_.size(), &response) &&
             response.id == request.id &&
             response.status == ResponseStatus::kOk;
    }
    return false;
  }

  ServeDaemon& daemon() { return daemon_; }

 private:
  ServeDaemon daemon_;
  int fd_ = -1;
  uint64_t next_id_ = 0;
  FrameDecoder decoder_;
  protowire::WireBuffer payload_;
  std::vector<uint8_t> outbuf_;
  std::vector<uint8_t> frame_;
};

TEST(ServeAllocTest, WarmedQueryCyclesAllocateNothing) {
  SteadyStateHarness harness;

  // Warmup: grows every buffer (decoder, output ring, ticket table,
  // event heap, query-state pool) to its high-water mark.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(harness.Cycle(RequestKind::kQuery)) << "warmup cycle " << i;
  }

  const uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
  const uint64_t serve_allocs_before = harness.daemon().serve_allocs();
  int ok = 0;
  constexpr int kCycles = 256;
  for (int i = 0; i < kCycles; ++i) {
    if (harness.Cycle(RequestKind::kQuery)) ++ok;  // no gtest in the loop
  }
  const uint64_t allocs =
      g_allocation_count.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t serve_allocs =
      harness.daemon().serve_allocs() - serve_allocs_before;

  EXPECT_EQ(ok, kCycles);
  EXPECT_EQ(serve_allocs, 0u) << "data-plane site counters saw allocations";
  EXPECT_EQ(allocs, 0u) << "global allocator saw " << allocs
                        << " allocations across " << kCycles
                        << " steady-state query cycles";
}

TEST(ServeAllocTest, WarmedStatsCyclesAllocateNothing) {
  SteadyStateHarness harness;

  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(harness.Cycle(RequestKind::kStats)) << "warmup cycle " << i;
  }

  const uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
  if (std::getenv("HYPERPROF_TRAP_ALLOC")) g_trap_on_alloc.store(true);
  int ok = 0;
  constexpr int kCycles = 64;
  for (int i = 0; i < kCycles; ++i) {
    if (harness.Cycle(RequestKind::kStats)) ++ok;
  }
  g_trap_on_alloc.store(false);
  const uint64_t allocs =
      g_allocation_count.load(std::memory_order_relaxed) - allocs_before;

  EXPECT_EQ(ok, kCycles);
  EXPECT_EQ(allocs, 0u) << "kStats responses must encode scratch-free";
}

}  // namespace
}  // namespace hyperprof::serve
