// Integration tests of the serving front door over real loopback sockets:
// full round-trips through the epoll daemon, pipelining, partial-frame
// reassembly at arbitrary split points, rejection of corrupt/truncated/
// oversized frames, load shedding, and the serving-accounting arithmetic
// on the socketless VirtualFrontDoor core.

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "platforms/platforms.h"
#include "serve/front_door.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace hyperprof::serve {
namespace {

// A realistic engine behind a tiny block space: fleet construction is
// dominated by the DFS Zipf prewarm, which scales with block_space, and
// these tests exercise serving mechanics rather than cache realism.
platforms::PlatformSpec CheapSpec(const char* name) {
  platforms::PlatformSpec spec = platforms::SpannerSpec();
  spec.name = name;
  spec.block_space = 1 << 14;
  return spec;
}

/** A daemon on an ephemeral loopback port, running in its own thread. */
class DaemonFixture {
 public:
  explicit DaemonFixture(ServerOptions options = FastOptions(),
                         bool cheap_platforms = false)
      : daemon_(std::move(options)) {
    if (cheap_platforms) {
      daemon_.AddPlatform(CheapSpec("a"));
      daemon_.AddPlatform(CheapSpec("b"));
      daemon_.AddPlatform(CheapSpec("c"));
    } else {
      daemon_.AddDefaultPlatforms();
    }
    EXPECT_TRUE(daemon_.Listen());
    thread_ = std::thread([this] { daemon_.Run(); });
  }

  ~DaemonFixture() {
    daemon_.Stop();
    thread_.join();
  }

  static ServerOptions FastOptions() {
    ServerOptions options;
    options.port = 0;
    // Virtual time outruns the wall clock so queries complete in wall
    // microseconds even under sanitizers.
    options.virtual_seconds_per_wall_second = 50.0;
    // Sample every query so the continuous windows deterministically see
    // the traffic these tests send.
    options.front_door.fleet.trace_sample_one_in = 1;
    return options;
  }

  ServeDaemon& daemon() { return daemon_; }

 private:
  ServeDaemon daemon_;
  std::thread thread_;
};

// Fleet construction (the DFS Zipf prewarm) dominates fixture cost, so the
// default-config tests share one long-lived daemon — which doubles as a
// test that the daemon survives many connections, including misbehaving
// ones, across its lifetime. Tests needing special admission or pacing
// options build their own.
DaemonFixture* g_shared_daemon = nullptr;

class SharedDaemonEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { g_shared_daemon = new DaemonFixture(); }
  void TearDown() override {
    delete g_shared_daemon;
    g_shared_daemon = nullptr;
  }
};

const auto* const g_environment =
    ::testing::AddGlobalTestEnvironment(new SharedDaemonEnvironment);

ServeDaemon& SharedDaemon() { return g_shared_daemon->daemon(); }

/** Minimal blocking test client speaking the frame protocol. */
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendBytes(const uint8_t* data, size_t size) {
    size_t offset = 0;
    while (offset < size) {
      const ssize_t n =
          ::send(fd_, data + offset, size - offset, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      offset += static_cast<size_t>(n);
    }
  }

  void SendRequest(const Request& request) {
    protowire::WireBuffer payload;
    EncodeRequest(request, payload);
    std::vector<uint8_t> frame;
    EncodeFrame(payload.data(), payload.size(), frame);
    SendBytes(frame.data(), frame.size());
  }

  /** Blocks (up to 5s) for the next response frame. */
  bool ReadResponse(Response* response) {
    std::vector<uint8_t> payload;
    for (;;) {
      const FrameDecoder::Status status = decoder_.Next(&payload);
      if (status == FrameDecoder::Status::kFrame) {
        return DecodeResponse(payload.data(), payload.size(), response);
      }
      if (status != FrameDecoder::Status::kNeedMore) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return false;
      uint8_t buffer[16 * 1024];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return false;
      decoder_.Feed(buffer, static_cast<size_t>(n));
    }
  }

  /** True once the peer has closed the connection (bounded wait). */
  bool WaitForClose() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    uint8_t buffer[4096];
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n == 0) return true;
      if (n < 0 && errno != EINTR && errno != EAGAIN) return true;
    }
    return false;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(ServeTest, QueryRoundTripOverLoopback) {
  TestClient client(SharedDaemon().port());

  Request request;
  request.id = 42;
  request.kind = RequestKind::kQuery;
  request.platform = 0;
  client.SendRequest(request);

  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.id, 42u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_GT(response.latency_nanos, 0u);
}

TEST(ServeTest, PipelinedRequestsAllAnswered) {
  TestClient client(SharedDaemon().port());

  // One write carrying many frames; responses may arrive in completion
  // order, not send order.
  std::vector<uint8_t> batch;
  constexpr uint64_t kCount = 32;
  for (uint64_t id = 0; id < kCount; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    request.platform = static_cast<uint32_t>(id % 3);
    protowire::WireBuffer payload;
    EncodeRequest(request, payload);
    EncodeFrame(payload.data(), payload.size(), batch);
  }
  client.SendBytes(batch.data(), batch.size());

  std::vector<bool> seen(kCount, false);
  for (uint64_t i = 0; i < kCount; ++i) {
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
    ASSERT_LT(response.id, kCount);
    EXPECT_FALSE(seen[response.id]) << "duplicate response " << response.id;
    seen[response.id] = true;
    EXPECT_EQ(response.status, ResponseStatus::kOk);
  }
}

TEST(ServeTest, PartialFramesReassembleAcrossArbitrarySplits) {
  TestClient client(SharedDaemon().port());

  Request request;
  request.id = 7;
  request.kind = RequestKind::kQuery;
  protowire::WireBuffer payload;
  EncodeRequest(request, payload);
  std::vector<uint8_t> frame;
  EncodeFrame(payload.data(), payload.size(), frame);

  // Dribble the frame one byte at a time with small pauses: the daemon
  // must reassemble across however many reads that takes.
  for (size_t i = 0; i < frame.size(); ++i) {
    client.SendBytes(frame.data() + i, 1);
    if (i % 4 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.id, 7u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
}

TEST(ServeTest, CorruptChecksumClosesConnection) {
  TestClient client(SharedDaemon().port());

  Request request;
  request.id = 1;
  protowire::WireBuffer payload;
  EncodeRequest(request, payload);
  std::vector<uint8_t> frame;
  EncodeFrame(payload.data(), payload.size(), frame);
  frame.back() ^= 0xff;  // corrupt the CRC
  client.SendBytes(frame.data(), frame.size());

  EXPECT_TRUE(client.WaitForClose());
}

TEST(ServeTest, OversizedFrameClosesConnection) {
  TestClient client(SharedDaemon().port());

  const uint32_t huge = kMaxFramePayload + 1;
  uint8_t header[4] = {static_cast<uint8_t>(huge),
                       static_cast<uint8_t>(huge >> 8),
                       static_cast<uint8_t>(huge >> 16),
                       static_cast<uint8_t>(huge >> 24)};
  client.SendBytes(header, sizeof(header));

  EXPECT_TRUE(client.WaitForClose());
}

TEST(ServeTest, TruncatedFrameAtDisconnectIsHarmless) {
  {
    TestClient client(SharedDaemon().port());
    Request request;
    request.id = 3;
    protowire::WireBuffer payload;
    EncodeRequest(request, payload);
    std::vector<uint8_t> frame;
    EncodeFrame(payload.data(), payload.size(), frame);
    client.SendBytes(frame.data(), frame.size() - 3);  // cut mid-frame
  }  // client hangs up with a partial frame buffered server-side

  // A fresh connection must be completely unaffected.
  TestClient client(SharedDaemon().port());
  Request request;
  request.id = 4;
  client.SendRequest(request);
  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.id, 4u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
}

TEST(ServeTest, UnknownPlatformGetsErrorResponse) {
  TestClient client(SharedDaemon().port());

  Request request;
  request.id = 9;
  request.kind = RequestKind::kQuery;
  request.platform = 999;
  client.SendRequest(request);

  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.id, 9u);
  EXPECT_EQ(response.status, ResponseStatus::kError);
}

TEST(ServeTest, StatsRequestReflectsServingCounters) {
  TestClient client(SharedDaemon().port());

  // The shared daemon accumulates counters across tests, so assert on the
  // before/after delta of this test's own traffic.
  auto fetch_stats = [&client](StatsSummary* stats) {
    Request request;
    request.id = 100;
    request.kind = RequestKind::kStats;
    client.SendRequest(request);
    Response response;
    if (!client.ReadResponse(&response) || !response.has_stats) return false;
    *stats = response.stats;
    return true;
  };

  StatsSummary before;
  ASSERT_TRUE(fetch_stats(&before));
  EXPECT_EQ(before.admitted + before.shed, before.offered);

  constexpr uint64_t kQueries = 8;
  for (uint64_t id = 0; id < kQueries; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    client.SendRequest(request);
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, ResponseStatus::kOk);
  }

  StatsSummary after;
  ASSERT_TRUE(fetch_stats(&after));
  EXPECT_EQ(after.offered - before.offered, kQueries);
  EXPECT_EQ(after.admitted + after.shed, after.offered);
  EXPECT_EQ(after.completed - before.completed, kQueries);
  EXPECT_EQ(after.in_flight, 0u);
  EXPECT_GT(after.virtual_nanos, 0u);
}

TEST(ServeTest, WindowsRequestStreamsLiveProfile) {
  TestClient client(SharedDaemon().port());

  // Complete some queries, then give virtual time a moment to cross a
  // 250ms continuous window (50x rate: ~5ms wall per window).
  for (uint64_t id = 0; id < 16; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    client.SendRequest(request);
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Request windows_request;
  windows_request.id = 200;
  windows_request.kind = RequestKind::kWindows;
  client.SendRequest(windows_request);
  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_FALSE(response.windows.empty());
  uint64_t total_queries = 0;
  for (const WindowSummary& window : response.windows) {
    EXPECT_GE(window.index, 0);
    total_queries += window.queries;
    if (window.queries > 0) {
      EXPECT_GT(window.latency_total_nanos, 0);
      EXPECT_GT(window.latency_p50, 0);
      EXPECT_LE(window.latency_p50, window.latency_p99);
    }
  }
  EXPECT_GT(total_queries, 0u);
}

TEST(ServeTest, SaturationShedsInsteadOfQueueing) {
  ServerOptions options = DaemonFixture::FastOptions();
  // Pathologically tight admission bound plus a virtual clock that barely
  // moves: almost everything past the first query must shed.
  options.virtual_seconds_per_wall_second = 1e-3;
  options.front_door.max_in_flight = 1;
  DaemonFixture fixture(std::move(options), /*cheap_platforms=*/true);
  TestClient client(fixture.daemon().port());

  constexpr uint64_t kCount = 24;
  std::vector<uint8_t> batch;
  for (uint64_t id = 0; id < kCount; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    protowire::WireBuffer payload;
    EncodeRequest(request, payload);
    EncodeFrame(payload.data(), payload.size(), batch);
  }
  client.SendBytes(batch.data(), batch.size());

  // Shed responses are synchronous; the one admitted query would need
  // ~minutes of wall time at this virtual rate, so only read the prompt
  // refusals — at least kCount - max_in_flight of them.
  uint64_t ok = 0, shed = 0;
  for (uint64_t i = 0; i + 1 < kCount; ++i) {
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
    if (response.status == ResponseStatus::kOk) ++ok;
    if (response.status == ResponseStatus::kShed) ++shed;
  }
  EXPECT_GE(shed, kCount - 2);
  EXPECT_EQ(ok + shed, kCount - 1);

  const ServingCounters& counters = fixture.daemon().counters();
  EXPECT_EQ(counters.offered, kCount);
  EXPECT_EQ(counters.admitted + counters.shed, counters.offered);
  EXPECT_GE(counters.admitted, 1u);
}

// Forces the daemon through its partial-write path: the client shrinks
// its receive buffer to the kernel minimum and refuses to read while
// hundreds of pipelined responses back up, so sendmsg repeatedly takes
// only part of the output ring (short writes), EPOLLOUT gets armed, and
// the front/back buffers swap many times. Every response must still
// arrive exactly once, CRC-intact, whatever the write fragmentation.
TEST(ServeTest, BackpressuredConnectionDeliversAllResponsesIntact) {
  constexpr uint64_t kCount = 600;

  TestClient client(SharedDaemon().port());
  // Request the smallest buffers the kernel will grant (it clamps the
  // 1-byte ask to its floor) so daemon-side writes go short quickly.
  int tiny = 1;
  ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));

  std::vector<uint8_t> batch;
  for (uint64_t id = 0; id < kCount; ++id) {
    Request request;
    request.id = id;
    // kStats responses are the largest single-frame payloads the daemon
    // emits synchronously — they pile up output fastest.
    request.kind = id % 2 == 0 ? RequestKind::kStats : RequestKind::kQuery;
    protowire::WireBuffer payload;
    EncodeRequest(request, payload);
    EncodeFrame(payload.data(), payload.size(), batch);
  }
  client.SendBytes(batch.data(), batch.size());

  // Let the daemon's output ring fill against the unread socket before
  // draining a single byte.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<bool> seen(kCount, false);
  for (uint64_t i = 0; i < kCount; ++i) {
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response)) << "response " << i;
    ASSERT_LT(response.id, kCount);
    EXPECT_FALSE(seen[response.id]) << "duplicate response " << response.id;
    seen[response.id] = true;
    if (response.id % 2 == 0) {
      EXPECT_TRUE(response.has_stats);
    } else {
      // A 300-query burst overruns the default admission window; shed
      // refusals are valid — the test pins delivery, not admission.
      EXPECT_TRUE(response.status == ResponseStatus::kOk ||
                  response.status == ResponseStatus::kShed);
    }
  }
}

TEST(ServeTest, StatsReportZeroSteadyStateAllocsUnderRepeatedTraffic) {
  TestClient client(SharedDaemon().port());

  // Warm this connection's buffers, then check the daemon's data-plane
  // allocation counter stops moving — surfaced through the wire itself.
  auto allocs_now = [&client](uint64_t id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kStats;
    client.SendRequest(request);
    Response response;
    EXPECT_TRUE(client.ReadResponse(&response));
    EXPECT_TRUE(response.has_stats);
    return response.stats.serve_allocs;
  };

  for (uint64_t id = 0; id < 32; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    client.SendRequest(request);
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
  }
  const uint64_t before = allocs_now(1000);
  for (uint64_t id = 0; id < 64; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    client.SendRequest(request);
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, ResponseStatus::kOk);
  }
  EXPECT_EQ(allocs_now(1001), before)
      << "warmed serial traffic must not grow data-plane buffers";
}

TEST(ServeTest, LoadGenAgainstDaemonConservesRequests) {

  LoadGenOptions load;
  load.port = SharedDaemon().port();
  load.offered_qps = 2000;
  load.total_requests = 400;
  load.seed = 7;
  const LoadGenReport report = RunLoadGen(load);

  ASSERT_TRUE(report.connected);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.ok + report.shed + report.errors, report.sent);
  EXPECT_EQ(report.sent, 400u);
  EXPECT_GT(report.latency_p50_ms, 0.0);
  EXPECT_GE(report.latency_p999_ms, report.latency_p50_ms);
}

TEST(ServeTest, LoadGenMultiConnectionWarmupExcludedFromStats) {
  LoadGenOptions load;
  load.port = SharedDaemon().port();
  load.offered_qps = 2000;
  load.total_requests = 300;
  load.warmup_requests = 100;
  load.connections = 3;
  load.seed = 11;
  const LoadGenReport report = RunLoadGen(load);

  ASSERT_TRUE(report.connected);
  EXPECT_EQ(report.warmup_sent, 100u);
  EXPECT_EQ(report.sent, 300u);  // measured only
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.ok + report.shed + report.errors, report.sent);
  // Nothing shed at this gentle rate: the shed-aware quantiles must
  // coincide with the accepted-only ones (no survivor bias to correct).
  if (report.shed == 0 && report.errors == 0) {
    EXPECT_DOUBLE_EQ(report.shed_aware_p50_ms, report.latency_p50_ms);
    EXPECT_DOUBLE_EQ(report.shed_aware_p99_ms, report.latency_p99_ms);
  }
  EXPECT_GT(report.latency_p50_ms, 0.0);
}

// The socketless accounting core: the same arithmetic the
// serving-accounting invariant checks fleet-wide.
TEST(ServeTest, FrontDoorAccountingBalances) {
  FrontDoorOptions options;
  options.max_in_flight = 4;
  VirtualFrontDoor door(options);
  door.AddPlatform(CheapSpec("a"));
  door.AddPlatform(CheapSpec("b"));
  door.AddPlatform(CheapSpec("c"));
  door.Start();

  uint64_t responses = 0, ok = 0, shed = 0;
  constexpr uint64_t kCount = 64;
  for (uint64_t id = 0; id < kCount; ++id) {
    Request request;
    request.id = id;
    request.kind = RequestKind::kQuery;
    door.Submit(request, [&](const Response& response) {
      ++responses;
      if (response.status == ResponseStatus::kOk) ++ok;
      if (response.status == ResponseStatus::kShed) ++shed;
    });
    // Alternate bursts and quiet periods so both the shed and the admit
    // paths run: pumping lets in-flight queries finish.
    if (id % 8 == 7) {
      door.Pump(door.virtual_now() + SimTime::Millis(50));
    }
    const ServingCounters& counters = door.counters();
    EXPECT_EQ(counters.admitted + counters.shed, counters.offered);
    EXPECT_LE(counters.in_flight(), options.max_in_flight);
    EXPECT_EQ(counters.responses, counters.completed);
  }

  door.Finish();
  const ServingCounters& counters = door.counters();
  EXPECT_EQ(counters.offered, kCount);
  EXPECT_GT(counters.shed, 0u);       // the tight bound did engage
  EXPECT_GT(counters.admitted, 0u);
  EXPECT_EQ(counters.in_flight(), 0u);
  EXPECT_EQ(counters.completed, counters.admitted);
  EXPECT_EQ(counters.responses, counters.completed);
  EXPECT_EQ(responses, kCount);
  EXPECT_EQ(ok, counters.completed);
  EXPECT_EQ(shed, counters.shed);
}

// Pump must be deterministic: the same admission sequence at the same
// virtual times yields bit-identical latencies regardless of pump chunking.
TEST(ServeTest, FrontDoorDeterministicAcrossPumpChunking) {
  auto run = [](SimTime step) {
    FrontDoorOptions options;
    VirtualFrontDoor door(options);
    door.AddPlatform(CheapSpec("a"));
    door.AddPlatform(CheapSpec("b"));
    door.AddPlatform(CheapSpec("c"));
    door.Start();
    // Keyed by request id: callback *interleaving* across platforms is a
    // function of pump chunking (each pump advances platforms in turn),
    // but every individual query's latency must be bit-identical.
    std::vector<uint64_t> latencies(32, 0);
    for (uint64_t id = 0; id < 32; ++id) {
      Request request;
      request.id = id;
      request.kind = RequestKind::kQuery;
      request.platform = static_cast<uint32_t>(id % 3);
      door.Submit(request, [&latencies, id](const Response& response) {
        latencies[id] = response.latency_nanos;
      });
    }
    SimTime horizon = door.virtual_now();
    const SimTime end = horizon + SimTime::Seconds(2);
    while (horizon < end) {
      horizon = horizon + step;
      door.Pump(horizon);
    }
    door.Finish();
    return latencies;
  };

  const auto coarse = run(SimTime::Millis(500));
  const auto fine = run(SimTime::Micros(700));
  EXPECT_EQ(coarse, fine);
}

}  // namespace
}  // namespace hyperprof::serve
