#include "sim/resource.h"

#include <vector>

#include <gtest/gtest.h>

namespace hyperprof::sim {
namespace {

TEST(ResourceTest, GrantsImmediatelyWhenFree) {
  Simulator simulator;
  Resource resource(&simulator, "cpu", 2);
  bool granted = false;
  resource.Acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(resource.in_use(), 1u);
  resource.Release();
  EXPECT_EQ(resource.in_use(), 0u);
}

TEST(ResourceTest, QueuesBeyondCapacityFifo) {
  Simulator simulator;
  Resource resource(&simulator, "disk", 1);
  std::vector<int> grant_order;
  resource.Acquire([&] { grant_order.push_back(0); });
  resource.Acquire([&] { grant_order.push_back(1); });
  resource.Acquire([&] { grant_order.push_back(2); });
  EXPECT_EQ(grant_order, (std::vector<int>{0}));
  EXPECT_EQ(resource.queue_length(), 2u);
  resource.Release();  // grants waiter 1
  resource.Release();  // grants waiter 2
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(resource.in_use(), 1u);  // waiter 2 still holds
  resource.Release();
  EXPECT_EQ(resource.in_use(), 0u);
}

TEST(ResourceTest, ServeHoldsForServiceTime) {
  Simulator simulator;
  Resource resource(&simulator, "core", 1);
  SimTime done_at;
  resource.Serve(SimTime::Micros(100), [&] { done_at = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(done_at, SimTime::Micros(100));
  EXPECT_EQ(resource.in_use(), 0u);
}

TEST(ResourceTest, SerializesServesAtUnitCapacity) {
  Simulator simulator;
  Resource resource(&simulator, "core", 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    resource.Serve(SimTime::Micros(10),
                   [&] { completions.push_back(simulator.Now()); });
  }
  simulator.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], SimTime::Micros(10));
  EXPECT_EQ(completions[1], SimTime::Micros(20));
  EXPECT_EQ(completions[2], SimTime::Micros(30));
}

TEST(ResourceTest, ParallelServesAtHigherCapacity) {
  Simulator simulator;
  Resource resource(&simulator, "cores", 3);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    resource.Serve(SimTime::Micros(10),
                   [&] { completions.push_back(simulator.Now()); });
  }
  simulator.Run();
  for (const SimTime& at : completions) {
    EXPECT_EQ(at, SimTime::Micros(10));
  }
}

TEST(ResourceTest, WaitStatsRecordQueueing) {
  Simulator simulator;
  Resource resource(&simulator, "core", 1);
  resource.Serve(SimTime::Micros(50), [] {});
  resource.Serve(SimTime::Micros(50), [] {});
  simulator.Run();
  EXPECT_EQ(resource.wait_stats().count(), 2u);
  EXPECT_DOUBLE_EQ(resource.wait_stats().min(), 0.0);
  EXPECT_NEAR(resource.wait_stats().max(), 50e-6, 1e-9);
}

TEST(ResourceTest, UtilizationReflectsBusyTime) {
  Simulator simulator;
  Resource resource(&simulator, "core", 1);
  resource.Serve(SimTime::Micros(30), [] {});
  simulator.Run();
  // Busy 30us over 30us elapsed -> utilization 1.
  EXPECT_NEAR(resource.Utilization(), 1.0, 1e-9);
  // Let time pass idle.
  simulator.Schedule(SimTime::Micros(30), [] {});
  simulator.Run();
  EXPECT_NEAR(resource.Utilization(), 0.5, 1e-9);
}

}  // namespace
}  // namespace hyperprof::sim
