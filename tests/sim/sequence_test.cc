#include "sim/sequence.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hyperprof::sim {
namespace {

TEST(SequenceTest, RunsStepsInOrder) {
  Simulator simulator;
  std::vector<int> order;
  Sequence::Run(
      {
          [&](Sequence::Done done) {
            order.push_back(1);
            simulator.Schedule(SimTime::Micros(10), std::move(done));
          },
          [&](Sequence::Done done) {
            order.push_back(2);
            simulator.Schedule(SimTime::Micros(10), std::move(done));
          },
          [&](Sequence::Done done) {
            order.push_back(3);
            done();
          },
      },
      [&] { order.push_back(99); });
  EXPECT_EQ(order, (std::vector<int>{1}));  // first step started inline
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 99}));
  EXPECT_EQ(simulator.Now(), SimTime::Micros(20));
}

TEST(SequenceTest, EmptySequenceCompletesImmediately) {
  bool completed = false;
  Sequence::Run({}, [&] { completed = true; });
  EXPECT_TRUE(completed);
}

TEST(SequenceTest, SynchronousStepsDoNotOverflow) {
  // 100k immediate steps must not blow the stack... within reason; use 10k.
  std::vector<Sequence::Step> steps;
  int count = 0;
  for (int i = 0; i < 10000; ++i) {
    steps.push_back([&count](Sequence::Done done) {
      ++count;
      done();
    });
  }
  bool completed = false;
  Sequence::Run(std::move(steps), [&] { completed = true; });
  EXPECT_TRUE(completed);
  EXPECT_EQ(count, 10000);
}

TEST(BarrierTest, FiresAfterAllArrive) {
  bool done = false;
  auto token = Barrier(3, [&] { done = true; });
  token();
  token();
  EXPECT_FALSE(done);
  token();
  EXPECT_TRUE(done);
}

TEST(BarrierTest, SingleCount) {
  bool done = false;
  auto token = Barrier(1, [&] { done = true; });
  token();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace hyperprof::sim
