// ShardGroup unit suite: canonical delivery order, epoch coalescing,
// quiesce with in-flight envelopes, and the zero-steady-state-allocation
// guarantee of the exchange path.
//
// This binary replaces the global allocator with a counting shim (the
// tracer_memory_test pattern); it must stay its own test executable so
// the override can't leak into other suites.
#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/shard_group.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace hyperprof::sim {
namespace {

constexpr SimTime kWindow = SimTime::Micros(500);

/** One delivery observation: (destination clock, lane, seq). */
struct LogEntry {
  int64_t at_nanos;
  uint64_t lane;
  uint64_t seq;
  bool operator==(const LogEntry& other) const {
    return at_nanos == other.at_nanos && lane == other.lane &&
           seq == other.seq;
  }
};

/**
 * A ShardGroup over `n` kernels plus per-destination delivery logs. Each
 * log is only ever appended by its own kernel's runner, so the harness is
 * safe under parallel runs without locks.
 */
struct Harness {
  explicit Harness(size_t n) : logs(n) {
    kernels.reserve(n);
    owned.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<Simulator>());
      kernels.push_back(owned.back().get());
    }
    group = std::make_unique<ShardGroup>(kernels, kWindow);
    for (auto& log : logs) log.reserve(4096);
  }

  std::vector<std::unique_ptr<Simulator>> owned;
  std::vector<Simulator*> kernels;
  std::unique_ptr<ShardGroup> group;
  std::vector<std::vector<LogEntry>> logs;
};

/**
 * Posts one hop of a round-robin chain from `from`: the payload logs at
 * the destination and, while hops remain, posts the next hop. Captures
 * stay under 48 bytes, so chain traffic exercises the inline path.
 */
void PostHop(Harness* h, uint32_t from, uint64_t lane, uint64_t seq,
             uint32_t remaining) {
  uint32_t to = (from + 1) % static_cast<uint32_t>(h->kernels.size());
  SimTime deliver = h->kernels[from]->Now() + kWindow;
  h->group->Post(from, to, deliver, lane, seq,
                 [h, to, lane, seq, remaining] {
                   h->logs[to].push_back(
                       {h->kernels[to]->Now().nanos(), lane, seq});
                   if (remaining > 0) PostHop(h, to, lane, seq + 1,
                                              remaining - 1);
                 });
}

/** Same chain, but every payload drags a 96-byte pad into the arena. */
void PostFatHop(Harness* h, uint32_t from, uint64_t lane, uint64_t seq,
                uint32_t remaining) {
  uint32_t to = (from + 1) % static_cast<uint32_t>(h->kernels.size());
  SimTime deliver = h->kernels[from]->Now() + kWindow;
  std::array<unsigned char, 96> pad{};
  pad[0] = static_cast<unsigned char>(seq);
  h->group->Post(from, to, deliver, lane, seq,
                 [h, to, lane, seq, remaining, pad] {
                   h->logs[to].push_back(
                       {h->kernels[to]->Now().nanos(), lane + pad[0] - pad[0],
                        seq});
                   if (remaining > 0) PostFatHop(h, to, lane, seq + 1,
                                                 remaining - 1);
                 });
}

/** Kicks `lanes` chains of `hops` messages each from kernel `from`. */
void StartChains(Harness* h, uint32_t from, uint64_t lanes, uint32_t hops) {
  for (uint64_t lane = 0; lane < lanes; ++lane) {
    h->kernels[from]->ScheduleFlagged(
        SimTime::Micros(static_cast<int64_t>(lane) * 40),
        [h, from, lane, hops] { PostHop(h, from, lane, 0, hops); });
  }
}

TEST(ShardGroupTest, AllocationCounterIsLive) {
  uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  auto* probe = new std::vector<int>(128);
  uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  delete probe;
  EXPECT_GT(after, before);
}

// Two sources each post a burst to kernel 0 at the same deliver instant
// with lanes in descending order (adversarial: the staging appends are
// out of canonical order within each run, and the runs interleave), plus
// a second wave one window later. Serial and parallel runs must deliver
// in the identical canonical (deliver, lane, seq) order.
TEST(ShardGroupTest, CanonicalDeliveryUnderAdversarialInterleavings) {
  auto run = [](bool parallel) {
    Harness h(3);
    for (uint32_t src : {1u, 2u}) {
      h.kernels[src]->ScheduleFlagged(SimTime::Zero(), [&h, src] {
        SimTime wave1 = h.kernels[src]->Now() + kWindow;
        SimTime wave2 = wave1 + kWindow;
        // src 1 posts odd lanes, src 2 even lanes, both descending.
        for (uint64_t lane : {5, 3, 1}) {
          uint64_t id = lane - (src == 2 ? 1 : 0);
          h.group->Post(src, 0, wave1, id, 0, [&h, id] {
            h.logs[0].push_back({h.kernels[0]->Now().nanos(), id, 0});
          });
          h.group->Post(src, 0, wave2, id, 1, [&h, id] {
            h.logs[0].push_back({h.kernels[0]->Now().nanos(), id, 1});
          });
        }
      });
    }
    ShardGroup::RunOptions options;
    options.parallel = parallel;
    h.group->Run(options);
    EXPECT_EQ(h.group->late_deliveries(), 0u);
    EXPECT_EQ(h.group->undelivered(), 0u);
    return h.logs[0];
  };
  std::vector<LogEntry> serial = run(false);
  std::vector<LogEntry> parallel = run(true);
  ASSERT_EQ(serial.size(), 12u);
  EXPECT_EQ(serial, parallel);
  // Canonical order: both waves ascend by lane regardless of post order.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(serial[i].lane, i) << "wave 1 position " << i;
    EXPECT_EQ(serial[6 + i].lane, i) << "wave 2 position " << i;
  }
}

// A sparse cross-shard workload over a kernel with dense local (never
// posting) activity: window-by-window and coalesced runs must be
// bit-identical in delivery logs, with the coalesced run executing
// strictly fewer epochs.
TEST(ShardGroupTest, CoalescedMatchesWindowByWindow) {
  auto run = [](bool coalesce) {
    Harness h(2);
    // Dense unflagged self-ticks on kernel 0 keep every window non-idle.
    struct Tick {
      Harness* h;
      int left;
      void operator()() {
        if (left-- > 0) h->kernels[0]->Schedule(SimTime::Micros(100), *this);
      }
    };
    h.kernels[0]->Schedule(SimTime::Zero(), Tick{&h, 400});
    // Kernel 1 pings kernel 0 every 10ms; the pong posts nothing.
    for (int64_t ms : {0, 10, 20, 30}) {
      h.kernels[1]->ScheduleFlagged(SimTime::Millis(ms), [&h, ms] {
        PostHop(&h, 1, static_cast<uint64_t>(ms), 0, 1);
      });
    }
    ShardGroup::RunOptions options;
    if (coalesce) {
      std::vector<Simulator*>* kernels = &h.kernels;
      options.post_horizon = [kernels](uint32_t k) {
        return (*kernels)[k]->flagged_horizon();
      };
    }
    uint64_t epochs = h.group->Run(options);
    EXPECT_EQ(h.group->late_deliveries(), 0u);
    EXPECT_EQ(h.group->undelivered(), 0u);
    return std::make_tuple(h.logs[0], h.logs[1], epochs,
                           h.group->coalesced_epochs());
  };
  auto [log0_a, log1_a, epochs_a, coalesced_a] = run(false);
  auto [log0_b, log1_b, epochs_b, coalesced_b] = run(true);
  EXPECT_EQ(log0_a, log0_b);
  EXPECT_EQ(log1_a, log1_b);
  EXPECT_EQ(coalesced_a, 0u);
  EXPECT_GT(coalesced_b, 0u);
  EXPECT_LT(epochs_b, epochs_a);
  ASSERT_EQ(log0_a.size(), 4u);  // four pings...
  ASSERT_EQ(log1_a.size(), 4u);  // ...four pongs
}

// Deep ping-pong chains leave envelopes in flight at every barrier; after
// Run() the group must account for all of them and the kernels must be
// fully drained, serial and parallel alike.
TEST(ShardGroupTest, QuiesceWithInFlightEnvelopes) {
  for (bool parallel : {false, true}) {
    Harness h(3);
    StartChains(&h, 0, /*lanes=*/5, /*hops=*/15);
    ShardGroup::RunOptions options;
    options.parallel = parallel;
    h.group->Run(options);
    // 5 lanes x 16 messages (hop 0..15) each.
    EXPECT_EQ(h.group->messages_posted(), 80u) << "parallel=" << parallel;
    EXPECT_EQ(h.group->messages_delivered(), 80u);
    EXPECT_EQ(h.group->undelivered(), 0u);
    EXPECT_EQ(h.group->late_deliveries(), 0u);
    size_t logged = 0;
    for (const auto& log : h.logs) logged += log.size();
    EXPECT_EQ(logged, 80u);
    for (Simulator* kernel : h.kernels) {
      EXPECT_EQ(kernel->pending_events(), 0u);
      EXPECT_EQ(kernel->cancelled_events(), 0u);
    }
  }
}

TEST(ShardGroupTest, UndeliveredCountsBufferedEnvelopes) {
  Harness h(2);
  h.group->Post(1, 0, kWindow, 7, 0, [&h] {
    h.logs[0].push_back({h.kernels[0]->Now().nanos(), 7, 0});
  });
  EXPECT_EQ(h.group->messages_posted(), 1u);
  EXPECT_EQ(h.group->undelivered(), 1u);
  ShardGroup::RunOptions options;
  h.group->Run(options);
  EXPECT_EQ(h.group->undelivered(), 0u);
  ASSERT_EQ(h.logs[0].size(), 1u);
}

// Oversized payloads land in per-source arena cells that recycle once the
// payload has run: repeating the identical workload on a warmed-up group
// must add no exchange allocations and no heap allocations at all.
TEST(ShardGroupTest, SteadyStateExchangeAllocatesNothing) {
  Harness h(2);
  ShardGroup::RunOptions options;  // serial: runner threads would allocate
  auto workload = [&h] {
    for (uint64_t lane = 0; lane < 4; ++lane) {
      h.kernels[0]->ScheduleFlagged(
          SimTime::Micros(static_cast<int64_t>(lane) * 40),
          [harness = &h, lane] { PostFatHop(harness, 0, lane, 0, 9); });
    }
  };
  // Warm-up: grows mailboxes, arena cells, kernel slot tables, heaps.
  workload();
  h.group->Run(options);
  EXPECT_EQ(h.group->messages_delivered(), 40u);
  uint64_t warmed_allocs = h.group->exchange_allocs();
  EXPECT_GT(warmed_allocs, 0u);  // the fat payloads did hit the arena
  size_t warmed_log = h.logs[1].size();

  for (auto& log : h.logs) log.clear();
  uint64_t heap_before = g_allocation_count.load(std::memory_order_relaxed);
  workload();
  h.group->Run(options);
  uint64_t heap_after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(heap_after - heap_before, 0u);
  EXPECT_EQ(h.group->exchange_allocs(), warmed_allocs);
  EXPECT_EQ(h.logs[1].size(), warmed_log);
  EXPECT_EQ(h.group->undelivered(), 0u);
  EXPECT_EQ(h.group->late_deliveries(), 0u);
}

// The inline path is alloc-free even on the very first run: small-capture
// chains touch only containers, which retain capacity across runs.
TEST(ShardGroupTest, InlinePayloadsSkipTheArena) {
  Harness h(2);
  ShardGroup::RunOptions options;
  StartChains(&h, 0, /*lanes=*/2, /*hops=*/5);
  h.group->Run(options);
  uint64_t after_first = h.group->exchange_allocs();
  StartChains(&h, 0, /*lanes=*/2, /*hops=*/5);
  h.group->Run(options);
  // No arena cells and no further container growth on the second run.
  EXPECT_EQ(h.group->exchange_allocs(), after_first);
  EXPECT_EQ(h.group->messages_delivered(), 24u);
}

}  // namespace
}  // namespace hyperprof::sim
