#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace hyperprof::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(SimTime::Micros(30), [&] { order.push_back(3); });
  simulator.Schedule(SimTime::Micros(10), [&] { order.push_back(1); });
  simulator.Schedule(SimTime::Micros(20), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), SimTime::Micros(30));
}

TEST(SimulatorTest, SameTimeFiresInScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.Schedule(SimTime::Micros(1), [&order, i] {
      order.push_back(i);
    });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(SimTime::Micros(1), [&] {
    ++fired;
    simulator.Schedule(SimTime::Micros(1), [&] { ++fired; });
  });
  uint64_t ran = simulator.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(simulator.Now(), SimTime::Micros(2));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simulator;
  simulator.Schedule(SimTime::Micros(5), [] {});
  simulator.Run();
  bool fired = false;
  simulator.Schedule(SimTime::Micros(-10), [&] { fired = true; });
  simulator.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(simulator.Now(), SimTime::Micros(5));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  EventId id = simulator.Schedule(SimTime::Micros(1), [&] { fired = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Cancel(EventId{}));
  EXPECT_FALSE(simulator.Cancel(EventId{9999}));
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator simulator;
  EventId id = simulator.Schedule(SimTime::Micros(1), [] {});
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));
  simulator.Run();
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.Schedule(SimTime::Micros(10), [&] { fired.push_back(1); });
  simulator.Schedule(SimTime::Micros(20), [&] { fired.push_back(2); });
  simulator.Schedule(SimTime::Micros(30), [&] { fired.push_back(3); });
  simulator.RunUntil(SimTime::Micros(20));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.Now(), SimTime::Micros(20));
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator simulator;
  simulator.RunUntil(SimTime::Millis(5));
  EXPECT_EQ(simulator.Now(), SimTime::Millis(5));
}

TEST(SimulatorTest, EventCountersTrack) {
  Simulator simulator;
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(SimTime::Micros(i), [] {});
  }
  EXPECT_EQ(simulator.pending_events(), 10u);
  simulator.Run();
  EXPECT_EQ(simulator.events_executed(), 10u);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator simulator;
  simulator.Schedule(SimTime::Micros(10), [] {});
  simulator.Run();
  SimTime fired_at;
  simulator.ScheduleAt(SimTime::Micros(3),
                       [&] { fired_at = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(fired_at, SimTime::Micros(10));
}

}  // namespace
}  // namespace hyperprof::sim
