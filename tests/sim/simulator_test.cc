#include "sim/simulator.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace hyperprof::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(SimTime::Micros(30), [&] { order.push_back(3); });
  simulator.Schedule(SimTime::Micros(10), [&] { order.push_back(1); });
  simulator.Schedule(SimTime::Micros(20), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), SimTime::Micros(30));
}

TEST(SimulatorTest, SameTimeFiresInScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.Schedule(SimTime::Micros(1), [&order, i] {
      order.push_back(i);
    });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(SimTime::Micros(1), [&] {
    ++fired;
    simulator.Schedule(SimTime::Micros(1), [&] { ++fired; });
  });
  uint64_t ran = simulator.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(simulator.Now(), SimTime::Micros(2));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simulator;
  simulator.Schedule(SimTime::Micros(5), [] {});
  simulator.Run();
  bool fired = false;
  simulator.Schedule(SimTime::Micros(-10), [&] { fired = true; });
  simulator.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(simulator.Now(), SimTime::Micros(5));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  EventId id = simulator.Schedule(SimTime::Micros(1), [&] { fired = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Cancel(EventId{}));
  EXPECT_FALSE(simulator.Cancel(EventId{9999}));
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator simulator;
  EventId id = simulator.Schedule(SimTime::Micros(1), [] {});
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));
  simulator.Run();
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.Schedule(SimTime::Micros(10), [&] { fired.push_back(1); });
  simulator.Schedule(SimTime::Micros(20), [&] { fired.push_back(2); });
  simulator.Schedule(SimTime::Micros(30), [&] { fired.push_back(3); });
  simulator.RunUntil(SimTime::Micros(20));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.Now(), SimTime::Micros(20));
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator simulator;
  simulator.RunUntil(SimTime::Millis(5));
  EXPECT_EQ(simulator.Now(), SimTime::Millis(5));
}

TEST(SimulatorTest, EventCountersTrack) {
  Simulator simulator;
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(SimTime::Micros(i), [] {});
  }
  EXPECT_EQ(simulator.pending_events(), 10u);
  simulator.Run();
  EXPECT_EQ(simulator.events_executed(), 10u);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, PendingCountsOnlyLiveEvents) {
  Simulator simulator;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(simulator.Schedule(SimTime::Micros(i + 1), [] {}));
  }
  EXPECT_EQ(simulator.pending_events(), 6u);
  EXPECT_EQ(simulator.cancelled_events(), 0u);
  simulator.Cancel(ids[0]);
  simulator.Cancel(ids[3]);
  // Cancelled tombstones no longer inflate the live count.
  EXPECT_EQ(simulator.pending_events(), 4u);
  EXPECT_EQ(simulator.cancelled_events(), 2u);
  uint64_t ran = simulator.Run();
  EXPECT_EQ(ran, 4u);
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_EQ(simulator.cancelled_events(), 0u);
}

TEST(SimulatorTest, CancelledIdStaysInvalidAfterSlotReuse) {
  Simulator simulator;
  bool old_fired = false;
  bool new_fired = false;
  EventId old_id =
      simulator.Schedule(SimTime::Micros(5), [&] { old_fired = true; });
  ASSERT_TRUE(simulator.Cancel(old_id));
  // The new event recycles the cancelled slot; the stale id must not be
  // able to cancel it.
  simulator.Schedule(SimTime::Micros(6), [&] { new_fired = true; });
  EXPECT_FALSE(simulator.Cancel(old_id));
  simulator.Run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(SimulatorTest, CancelFromInsideOwnCallbackReturnsFalse) {
  Simulator simulator;
  bool cancel_result = true;
  EventId id;
  id = simulator.Schedule(SimTime::Micros(1),
                          [&] { cancel_result = simulator.Cancel(id); });
  simulator.Run();
  EXPECT_FALSE(cancel_result);
}

TEST(SimulatorTest, MoveOnlyCallbacksAreSupported) {
  Simulator simulator;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  simulator.Schedule(SimTime::Micros(1),
                     [payload = std::move(payload), &seen] {
                       seen = *payload + 1;
                     });
  simulator.Run();
  EXPECT_EQ(seen, 42);
}

TEST(SimulatorTest, LargeCapturesSurviveSlotRecycling) {
  // Captures past the inline buffer take the heap fallback; interleave
  // scheduling, cancelling, and firing to exercise slot churn.
  Simulator simulator;
  struct Big {
    char bytes[96];
  };
  Big big{};
  big.bytes[95] = 7;
  int total = 0;
  for (int round = 0; round < 50; ++round) {
    EventId doomed = simulator.Schedule(SimTime::Micros(round), [] {});
    simulator.Schedule(SimTime::Micros(round),
                       [big, &total] { total += big.bytes[95]; });
    simulator.Cancel(doomed);
  }
  simulator.Run();
  EXPECT_EQ(total, 50 * 7);
}

TEST(SimulatorTest, DrainedKernelRetainsHeapCapacityAcrossRuns) {
  Simulator simulator;
  simulator.Reserve(1024);
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 1000; ++i) {
      simulator.Schedule(SimTime::Micros(i), [] {});
    }
    simulator.Run();
    EXPECT_EQ(simulator.pending_events(), 0u);
  }
  EXPECT_EQ(simulator.events_executed(), 3000u);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator simulator;
  simulator.Schedule(SimTime::Micros(10), [] {});
  simulator.Run();
  SimTime fired_at;
  simulator.ScheduleAt(SimTime::Micros(3),
                       [&] { fired_at = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(fired_at, SimTime::Micros(10));
}

TEST(SimulatorTest, FlaggedHorizonTracksEarliestPendingFlagged) {
  Simulator simulator;
  EXPECT_EQ(simulator.flagged_horizon(), SimTime::Max());
  simulator.Schedule(SimTime::Micros(1), [] {});  // unflagged: invisible
  EXPECT_EQ(simulator.flagged_horizon(), SimTime::Max());
  simulator.ScheduleFlagged(SimTime::Micros(20), [] {});
  EventId early = simulator.ScheduleFlagged(SimTime::Micros(5), [] {});
  EXPECT_EQ(simulator.flagged_horizon(), SimTime::Micros(5));
  simulator.Cancel(early);  // pruned lazily at the next query
  EXPECT_EQ(simulator.flagged_horizon(), SimTime::Micros(20));
  simulator.Run();
  EXPECT_EQ(simulator.flagged_horizon(), SimTime::Max());
}

TEST(SimulatorTest, FlaggedEventsFireInScheduleOrderWithUnflagged) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(SimTime::Micros(7), [&] { order.push_back(1); });
  simulator.ScheduleFlagged(SimTime::Micros(7), [&] { order.push_back(2); });
  simulator.ScheduleFlaggedAt(SimTime::Micros(7),
                              [&] { order.push_back(3); });
  simulator.Schedule(SimTime::Micros(7), [&] { order.push_back(4); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulatorTest, FlaggedHeapCompactsAcrossRepeatedDrains) {
  Simulator simulator;
  for (int wave = 0; wave < 100; ++wave) {
    for (int i = 0; i < 50; ++i) {
      simulator.ScheduleFlagged(SimTime::Micros(i), [] {});
    }
    simulator.Run();
  }
  // Stale entries are compacted in place, so the flagged bookkeeping
  // stays proportional to pending events, not total ever scheduled.
  EXPECT_LT(simulator.memory_bytes(), 64 * 1024u);
}

}  // namespace
}  // namespace hyperprof::sim
