#include "soc/chained_soc.h"

#include <gtest/gtest.h>

#include "core/accel_model.h"

namespace hyperprof::soc {
namespace {

MessageBatch FixedBatch(size_t count, uint64_t bytes) {
  MessageBatch batch;
  batch.message_bytes.assign(count, bytes);
  return batch;
}

TEST(MessageBatchTest, SyntheticShape) {
  Rng rng(1);
  MessageBatch batch = MessageBatch::Synthetic(100, 2048, rng);
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_GT(batch.TotalBytes(), 100u * 500);
  EXPECT_LT(batch.TotalBytes(), 100u * 10000);
  for (uint64_t bytes : batch.message_bytes) EXPECT_GE(bytes, 16u);
}

TEST(CalibrationTest, TotalsMatchTargets) {
  MessageBatch batch = FixedBatch(100, 1000);
  SocConfig config = SocConfig::CalibratedTo(batch.TotalBytes(),
                                             batch.size());
  ChainedSocSim sim(config);
  SocRunResult result = sim.RunUnaccelerated(batch);
  EXPECT_NEAR(result.serialize_time.ToMicros(), 518.3, 0.5);
  EXPECT_NEAR(result.hash_time.ToMicros(), 1112.5, 0.5);
  EXPECT_NEAR(result.init_time.ToMicros(), 4948.7, 0.5);
}

TEST(SocSimTest, UnacceleratedIsSumOfPhases) {
  MessageBatch batch = FixedBatch(10, 1000);
  SocConfig config = SocConfig::CalibratedTo(batch.TotalBytes(),
                                             batch.size());
  ChainedSocSim sim(config);
  SocRunResult result = sim.RunUnaccelerated(batch);
  EXPECT_EQ(result.total,
            result.init_time + result.serialize_time + result.hash_time);
}

TEST(SocSimTest, AcceleratedSyncPaysSetupPerAccelerator) {
  MessageBatch batch = FixedBatch(100, 1000);
  SocConfig config = SocConfig::CalibratedTo(batch.TotalBytes(),
                                             batch.size());
  ChainedSocSim sim(config);
  SocRunResult unaccel = sim.RunUnaccelerated(batch);
  SocRunResult accel = sim.RunAcceleratedSync(batch);
  // Accelerated compute phases shrink by the speedups plus setups.
  double expected_serialize =
      unaccel.serialize_time.ToSeconds() / config.serialize_speedup +
      config.serialize_setup.ToSeconds();
  // Tolerance covers nanosecond-tick rounding of per-message services.
  EXPECT_NEAR(accel.serialize_time.ToSeconds(), expected_serialize, 1e-7);
  double expected_hash =
      unaccel.hash_time.ToSeconds() / config.hash_speedup +
      config.hash_setup.ToSeconds();
  EXPECT_NEAR(accel.hash_time.ToSeconds(), expected_hash, 1e-7);
}

TEST(SocSimTest, ChainedBeatsAcceleratedSync) {
  Rng rng(2);
  MessageBatch batch = MessageBatch::Synthetic(200, 2048, rng);
  SocConfig config = SocConfig::CalibratedTo(batch.TotalBytes(),
                                             batch.size());
  ChainedSocSim sim(config);
  EXPECT_LT(sim.RunChained(batch).total.ToSeconds(),
            sim.RunAcceleratedSync(batch).total.ToSeconds());
}

TEST(SocSimTest, ChainedRespectsDataDependencies) {
  // With zero setup and instant hashing, the chain finishes right after
  // the last serialization, which itself waits for the last init.
  MessageBatch batch = FixedBatch(10, 1000);
  SocConfig config;
  config.cpu_init_s_per_message = 100e-6;
  config.cpu_serialize_s_per_byte = 31e-9;  // 31us per msg pre-accel
  config.cpu_hash_s_per_byte = 51.3e-12;
  config.serialize_speedup = 31.0;
  config.hash_speedup = 51.3;
  config.serialize_setup = SimTime::Zero();
  config.hash_setup = SimTime::Zero();
  ChainedSocSim sim(config);
  SocRunResult result = sim.RunChained(batch);
  // Last init at 1000us; serialize 1us; hash ~1ns (+ tick rounding).
  EXPECT_GT(result.total, SimTime::Micros(1000));
  EXPECT_LT(result.total, SimTime::Micros(1011));
}

TEST(SocSimTest, EmptyBatchChainedIsZero) {
  SocConfig config;
  ChainedSocSim sim(config);
  MessageBatch batch;
  EXPECT_EQ(sim.RunChained(batch).total, SimTime::Zero());
}

TEST(Table8Test, ModelDifferenceNearPaper) {
  // The headline validation: event-simulated chained execution vs the
  // analytical model's Eq. 9-12 prediction. The paper reports 6.1%.
  Rng rng(7);
  MessageBatch batch = MessageBatch::Synthetic(200, 2048, rng);
  SocConfig config = SocConfig::CalibratedTo(batch.TotalBytes(),
                                             batch.size());
  ChainedSocSim sim(config);
  SocRunResult unaccel = sim.RunUnaccelerated(batch);
  SocRunResult chained = sim.RunChained(batch);

  model::Workload workload;
  workload.t_cpu = unaccel.total.ToSeconds();
  workload.t_dep = 0;
  workload.f = 1.0;
  model::Component serialize;
  serialize.name = "Proto. Ser.";
  serialize.t_sub = unaccel.serialize_time.ToSeconds();
  serialize.speedup = config.serialize_speedup;
  serialize.t_setup = config.serialize_setup.ToSeconds();
  serialize.chained = true;
  model::Component hash;
  hash.name = "SHA3";
  hash.t_sub = unaccel.hash_time.ToSeconds();
  hash.speedup = config.hash_speedup;
  hash.t_setup = config.hash_setup.ToSeconds();
  hash.chained = true;
  workload.components = {serialize, hash};
  double modeled = model::AccelModel(workload).AcceleratedE2e();

  EXPECT_NEAR(modeled * 1e6, 6459.3, 25.0);
  double diff = std::abs(modeled - chained.total.ToSeconds()) / modeled;
  EXPECT_GT(diff, 0.02);
  EXPECT_LT(diff, 0.12);  // paper: 6.1%
  // Measured chained is faster than the model's conservative bound.
  EXPECT_LT(chained.total.ToSeconds(), modeled);
}

TEST(SocSimTest, SetupOverlapFractionReducesChainedTime) {
  Rng rng(9);
  MessageBatch batch = MessageBatch::Synthetic(100, 2048, rng);
  SocConfig config = SocConfig::CalibratedTo(batch.TotalBytes(),
                                             batch.size());
  config.setup_overlap_fraction = 0.0;
  ChainedSocSim no_overlap(config);
  config.setup_overlap_fraction = 0.5;
  ChainedSocSim with_overlap(config);
  EXPECT_GT(no_overlap.RunChained(batch).total,
            with_overlap.RunChained(batch).total);
}

}  // namespace
}  // namespace hyperprof::soc
