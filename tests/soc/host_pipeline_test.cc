#include "soc/host_pipeline.h"

#include <gtest/gtest.h>

namespace hyperprof::soc {
namespace {

TEST(HostPipelineTest, OutputsAgreeBetweenSerialAndChained) {
  HostValidationResult result = RunHostValidation(60, /*seed=*/3,
                                                  /*repetitions=*/2);
  EXPECT_EQ(result.digest_xor, 0u) << "chained digests differ from serial";
  EXPECT_EQ(result.num_messages, 60u);
  EXPECT_GT(result.total_wire_bytes, 0u);
}

TEST(HostPipelineTest, TimesArePositiveAndConsistent) {
  HostValidationResult result = RunHostValidation(60, /*seed=*/5,
                                                  /*repetitions=*/2);
  EXPECT_GT(result.serialize_seconds, 0.0);
  EXPECT_GT(result.hash_seconds, 0.0);
  EXPECT_NEAR(result.serial_total_seconds,
              result.serialize_seconds + result.hash_seconds, 1e-9);
  EXPECT_GT(result.chained_total_seconds, 0.0);
}

TEST(HostPipelineTest, ModelPredictsLongestStage) {
  HostValidationResult result = RunHostValidation(60, /*seed=*/7,
                                                  /*repetitions=*/2);
  double longest = std::max(result.serialize_seconds, result.hash_seconds);
  EXPECT_NEAR(result.modeled_chained_seconds, longest, 1e-9);
}

TEST(HostPipelineTest, ChainedBeatsSerialOnMultiCoreHosts) {
  // With two host threads the chain overlaps the stages; allow generous
  // slack for noisy CI machines but require it not be slower than serial
  // by more than scheduling noise.
  HostValidationResult result = RunHostValidation(150, /*seed=*/9,
                                                  /*repetitions=*/4);
  EXPECT_LT(result.chained_total_seconds,
            result.serial_total_seconds * 1.15);
}

TEST(HostPipelineTest, DeterministicMessageShapes) {
  HostValidationResult a = RunHostValidation(40, /*seed=*/11,
                                             /*repetitions=*/1);
  HostValidationResult b = RunHostValidation(40, /*seed=*/11,
                                             /*repetitions=*/1);
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
}

TEST(HostPipelineTest, ErrorFractionComputation) {
  HostValidationResult result;
  result.modeled_chained_seconds = 2.0;
  result.chained_total_seconds = 2.2;
  EXPECT_NEAR(result.ModelErrorFraction(), 0.1, 1e-12);
  result.chained_total_seconds = 1.8;
  EXPECT_NEAR(result.ModelErrorFraction(), 0.1, 1e-12);
  result.modeled_chained_seconds = 0.0;
  EXPECT_EQ(result.ModelErrorFraction(), 0.0);
}

}  // namespace
}  // namespace hyperprof::soc
