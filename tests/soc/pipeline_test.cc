#include "soc/pipeline.h"

#include <gtest/gtest.h>

namespace hyperprof::soc {
namespace {

MessageBatch FixedBatch(size_t count, uint64_t bytes) {
  MessageBatch batch;
  batch.message_bytes.assign(count, bytes);
  return batch;
}

/** The Table 8 two-stage chain expressed as a pipeline. */
AcceleratorPipeline Table8Pipeline(const MessageBatch& batch) {
  SocConfig config =
      SocConfig::CalibratedTo(batch.TotalBytes(), batch.size());
  PipelineStage serialize;
  serialize.name = "protobuf";
  serialize.cpu_s_per_byte = config.cpu_serialize_s_per_byte;
  serialize.speedup = config.serialize_speedup;
  serialize.setup = config.serialize_setup;
  serialize.setup_policy = SetupPolicy::kHideUnderPreparation;
  serialize.hidden_fraction = config.setup_overlap_fraction;
  PipelineStage hash;
  hash.name = "sha3";
  hash.cpu_s_per_byte = config.cpu_hash_s_per_byte;
  hash.speedup = config.hash_speedup;
  hash.setup = config.hash_setup;
  return AcceleratorPipeline({serialize, hash},
                             config.cpu_init_s_per_message);
}

TEST(PipelineTest, TwoStageMatchesChainedSocSim) {
  Rng rng(7);
  MessageBatch batch = MessageBatch::Synthetic(200, 2048, rng);
  SocConfig config =
      SocConfig::CalibratedTo(batch.TotalBytes(), batch.size());
  ChainedSocSim reference(config);
  AcceleratorPipeline pipeline = Table8Pipeline(batch);

  SocRunResult expected = reference.RunChained(batch);
  PipelineRunResult actual = pipeline.RunChained(batch);
  EXPECT_NEAR(actual.total.ToSeconds(), expected.total.ToSeconds(), 1e-6);

  SocRunResult expected_sync = reference.RunAcceleratedSync(batch);
  PipelineRunResult actual_sync = pipeline.RunAcceleratedSync(batch);
  EXPECT_NEAR(actual_sync.total.ToSeconds(),
              expected_sync.total.ToSeconds(), 1e-6);

  SocRunResult expected_cpu = reference.RunUnaccelerated(batch);
  PipelineRunResult actual_cpu = pipeline.RunUnaccelerated(batch);
  EXPECT_NEAR(actual_cpu.total.ToSeconds(),
              expected_cpu.total.ToSeconds(), 1e-6);
}

TEST(PipelineTest, ChainedNeverSlowerThanSync) {
  Rng rng(9);
  for (int depth = 1; depth <= 5; ++depth) {
    std::vector<PipelineStage> stages;
    for (int s = 0; s < depth; ++s) {
      PipelineStage stage;
      stage.name = "s" + std::to_string(s);
      stage.cpu_s_per_byte = 1e-9 * static_cast<double>(1 + s);
      stage.speedup = 8.0;
      stage.setup = SimTime::Micros(10 * (s + 1));
      stages.push_back(stage);
    }
    AcceleratorPipeline pipeline(stages, 5e-6);
    MessageBatch batch = MessageBatch::Synthetic(100, 4096, rng);
    EXPECT_LE(pipeline.RunChained(batch).total.nanos(),
              pipeline.RunAcceleratedSync(batch).total.nanos())
        << "depth " << depth;
  }
}

TEST(PipelineTest, SlowestStageBoundsThroughput) {
  // A deliberately unbalanced chain: the middle stage is 10x slower.
  PipelineStage fast_a{"a", 1e-10, 1.0, SimTime::Zero(),
                       SetupPolicy::kArmAtStart, 0};
  PipelineStage slow{"slow", 1e-9, 1.0, SimTime::Zero(),
                     SetupPolicy::kArmAtStart, 0};
  PipelineStage fast_b = fast_a;
  fast_b.name = "b";
  AcceleratorPipeline pipeline({fast_a, slow, fast_b}, 0.0);
  MessageBatch batch = FixedBatch(1000, 1000);
  PipelineRunResult result = pipeline.RunChained(batch);
  // Total ~= slow stage's busy time (1000 msgs x 1us) + edge effects.
  double slow_busy = 1e-9 * 1000 * 1000;
  EXPECT_NEAR(result.total.ToSeconds(), slow_busy, 0.05 * slow_busy);
}

TEST(PipelineTest, ModeledChainedMatchesEquations) {
  MessageBatch batch = FixedBatch(10, 1000);
  PipelineStage a{"a", 2e-9, 4.0, SimTime::Micros(100),
                  SetupPolicy::kArmAtStart, 0};
  PipelineStage b{"b", 1e-9, 2.0, SimTime::Micros(300),
                  SetupPolicy::kArmAtStart, 0};
  AcceleratorPipeline pipeline({a, b}, 50e-6);
  // t_nacc = 10 * 50us = 500us; t_lpen = 300us;
  // services: a = 2e-9*10000/4 = 5us, b = 1e-9*10000/2 = 5us -> max 5us.
  EXPECT_NEAR(pipeline.ModeledChained(batch).ToSeconds(), 805e-6, 1e-9);
}

TEST(PipelineTest, DeeperChainsStayNearModelWhenBalanced) {
  Rng rng(11);
  MessageBatch batch = MessageBatch::Synthetic(500, 2048, rng);
  for (int depth = 2; depth <= 5; ++depth) {
    std::vector<PipelineStage> stages;
    for (int s = 0; s < depth; ++s) {
      PipelineStage stage;
      stage.name = "s" + std::to_string(s);
      stage.cpu_s_per_byte = 2e-9;
      stage.speedup = 16.0;
      stage.setup = SimTime::Micros(5);
      stages.push_back(stage);
    }
    AcceleratorPipeline pipeline(stages, 2e-6);
    double measured = pipeline.RunChained(batch).total.ToSeconds();
    double modeled = pipeline.ModeledChained(batch).ToSeconds();
    // The model ignores pipeline fill (depth-1 extra message latencies),
    // so deeper chains drift, but stay within 25% when balanced.
    EXPECT_NEAR(measured / modeled, 1.0, 0.25) << "depth " << depth;
  }
}

TEST(PipelineTest, HiddenSetupShortensChain) {
  MessageBatch batch = FixedBatch(100, 2048);
  PipelineStage stage;
  stage.name = "s";
  stage.cpu_s_per_byte = 1e-9;
  stage.speedup = 8.0;
  stage.setup = SimTime::Millis(1);
  stage.setup_policy = SetupPolicy::kArmAtStart;
  AcceleratorPipeline armed({stage}, 20e-6);
  stage.setup_policy = SetupPolicy::kHideUnderPreparation;
  stage.hidden_fraction = 1.0;
  AcceleratorPipeline hidden({stage}, 20e-6);
  // Arm-at-start hides setup under the 2ms of preparation completely;
  // hide-under-preparation with fraction 1.0 starts it 1ms before the
  // end of preparation, same effect. Both beat a serial model.
  EXPECT_LE(armed.RunChained(batch).total.nanos(),
            hidden.RunChained(batch).total.nanos() + 1000);
}

TEST(PipelineTest, EmptyBatch) {
  PipelineStage stage{"s", 1e-9, 2.0, SimTime::Micros(1),
                      SetupPolicy::kArmAtStart, 0};
  AcceleratorPipeline pipeline({stage}, 1e-6);
  MessageBatch batch;
  EXPECT_EQ(pipeline.RunChained(batch).total, SimTime::Zero());
}

}  // namespace
}  // namespace hyperprof::soc
