#include "storage/dfs.h"

#include <gtest/gtest.h>

#include "net/fault.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace hyperprof::storage {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : rpc_(&simulator_, &network_, Rng(2)) {}

  DfsParams SmallParams() {
    DfsParams params;
    params.num_fileservers = 4;
    params.store.ram_bytes = 1 << 20;
    params.store.ssd_bytes = 8 << 20;
    return params;
  }

  sim::Simulator simulator_;
  net::NetworkModel network_;
  net::RpcSystem rpc_;
  net::NodeId client_{0, 0, 1};
};

TEST_F(DfsTest, ReadCompletesWithTimes) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  IoResult result;
  bool done = false;
  dfs.Read(client_, 42, 4096, [&](const IoResult& r) {
    result = r;
    done = true;
  });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.served_by, Tier::kHdd);  // cold
  EXPECT_GT(result.total_time, result.device_time);
  EXPECT_GT(result.network_time, SimTime::Zero());
}

TEST_F(DfsTest, SecondReadHitsRam) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  Tier second_tier = Tier::kHdd;
  dfs.Read(client_, 42, 4096, [&](const IoResult&) {
    dfs.Read(client_, 42, 4096,
             [&](const IoResult& r) { second_tier = r.served_by; });
  });
  simulator_.Run();
  EXPECT_EQ(second_tier, Tier::kRam);
}

TEST_F(DfsTest, BlocksSpreadAcrossFileservers) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  std::vector<int> hits(4, 0);
  for (uint64_t block = 0; block < 200; ++block) {
    ++hits[dfs.HomeServer(block)];
  }
  for (int count : hits) {
    EXPECT_GT(count, 20);  // roughly uniform placement
  }
}

TEST_F(DfsTest, HomeServerIsStable) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  for (uint64_t block = 0; block < 50; ++block) {
    EXPECT_EQ(dfs.HomeServer(block), dfs.HomeServer(block));
  }
}

TEST_F(DfsTest, WriteReplicatesToMultipleServers) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  dfs.Write(client_, 7, 8192, /*replication=*/3,
            [&](const IoResult&) { done = true; });
  simulator_.Run();
  ASSERT_TRUE(done);
  uint64_t total_writes = 0;
  for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
    total_writes += dfs.server_store(s).writes();
  }
  EXPECT_EQ(total_writes, 3u);
}

TEST_F(DfsTest, ReplicationClampedToServerCount) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  dfs.Write(client_, 7, 1024, /*replication=*/99,
            [&](const IoResult&) { done = true; });
  simulator_.Run();
  ASSERT_TRUE(done);
  uint64_t total_writes = 0;
  for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
    total_writes += dfs.server_store(s).writes();
  }
  EXPECT_EQ(total_writes, 4u);  // clamped to num_fileservers
}

TEST_F(DfsTest, WriteWaitsForSlowestReplica) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  SimTime single_time, replicated_time;
  dfs.Write(client_, 11, 4096, 1,
            [&](const IoResult& r) { single_time = r.total_time; });
  simulator_.Run();
  dfs.Write(client_, 12, 4096, 3,
            [&](const IoResult& r) { replicated_time = r.total_time; });
  simulator_.Run();
  // Max-of-three is stochastically >= a single ack; with jitter it is
  // almost surely strictly larger.
  EXPECT_GE(replicated_time, single_time);
}

TEST_F(DfsTest, PrewarmZipfWarmsHotBlocks) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  dfs.PrewarmZipf(/*ram_blocks=*/10, /*ssd_blocks=*/50, 4096);
  Tier hot_tier = Tier::kHdd, warm_tier = Tier::kHdd,
       cold_tier = Tier::kRam;
  dfs.Read(client_, 5, 4096, [&](const IoResult& r) {
    hot_tier = r.served_by;
  });
  dfs.Read(client_, 30, 4096, [&](const IoResult& r) {
    warm_tier = r.served_by;
  });
  dfs.Read(client_, 5000, 4096, [&](const IoResult& r) {
    cold_tier = r.served_by;
  });
  simulator_.Run();
  EXPECT_EQ(hot_tier, Tier::kRam);
  EXPECT_EQ(warm_tier, Tier::kSsd);
  EXPECT_EQ(cold_tier, Tier::kHdd);
}

TEST_F(DfsTest, TierServeFractionsAggregateAcrossServers) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  dfs.PrewarmZipf(100, 100, 4096);
  int outstanding = 0;
  for (uint64_t block = 0; block < 100; ++block) {
    ++outstanding;
    dfs.Read(client_, block, 4096, [&](const IoResult&) { --outstanding; });
  }
  simulator_.Run();
  EXPECT_EQ(outstanding, 0);
  EXPECT_NEAR(dfs.TierServeFraction(Tier::kRam), 1.0, 1e-9);
}

TEST_F(DfsTest, TierServeFractionSumsRawCountersExactly) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  dfs.PrewarmZipf(20, 60, 4096);
  for (uint64_t block = 0; block < 120; ++block) {
    dfs.Read(client_, block, 4096, [](const IoResult&) {});
  }
  simulator_.Run();
  for (Tier tier : {Tier::kRam, Tier::kSsd, Tier::kHdd}) {
    uint64_t total = 0, tier_count = 0;
    for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
      total += dfs.server_store(s).reads();
      tier_count += dfs.server_store(s).tier_reads(tier);
    }
    ASSERT_GT(total, 0u);
    // Exact equality: the aggregate is the raw-counter ratio, not a sum of
    // re-rounded per-store fractions.
    EXPECT_EQ(dfs.TierServeFraction(tier),
              static_cast<double>(tier_count) / static_cast<double>(total));
  }
}

TEST_F(DfsTest, TierServeFractionOldRoundingMathLosesCounts) {
  // Regression pin for the bug this replaces: the old aggregation derived
  // each store's per-tier count as round(fraction * reads + 0.5), where
  // fraction itself is served/reads in double. Past 2^51 reads the
  // round-trip through the fraction no longer recovers the integer. These
  // (reads, served) pairs were found by search; each one re-derives to a
  // different count, so an aggregation built on the old math reports a
  // wrong total while summing raw counters is exact at any magnitude.
  struct Pair {
    uint64_t reads, served;
  };
  const Pair kDiverging[] = {
      {7378732916781557ULL, 7226161561168607ULL},
      {8435094068304335ULL, 6537899815195893ULL},
      {7004262855817095ULL, 6878807688530173ULL},
      {8348309313425887ULL, 6854008534861993ULL},
      {4921447804138685ULL, 4510805342071287ULL},
  };
  for (const Pair& pair : kDiverging) {
    double fraction = static_cast<double>(pair.served) /
                      static_cast<double>(pair.reads);
    uint64_t rederived = static_cast<uint64_t>(
        fraction * static_cast<double>(pair.reads) + 0.5);
    EXPECT_NE(rederived, pair.served)
        << "expected divergence for reads=" << pair.reads;
  }
}

TEST_F(DfsTest, ZeroReplicationWriteReportsInvalidArgument) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  bool callback_was_async = true;
  dfs.Write(client_, 7, 4096, /*replication=*/0, [&](const IoResult& r) {
    done = true;
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  });
  // The completion must not have run on the caller's stack.
  callback_was_async = !done;
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(callback_was_async);
  EXPECT_EQ(dfs.invalid_writes(), 1u);
  uint64_t total_writes = 0;
  for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
    total_writes += dfs.server_store(s).writes();
  }
  EXPECT_EQ(total_writes, 0u);  // nothing touched any store
}

TEST_F(DfsTest, QuorumWriteCompletesEarlyAndStragglersFinish) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  IoResult at_completion;
  SimTime quorum_time;
  dfs.Write(client_, 7, 8192, /*replication=*/3, /*quorum_acks=*/1,
            [&](const IoResult& r) {
              done = true;
              at_completion = r;
              quorum_time = simulator_.Now();
            });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(at_completion.ok());
  EXPECT_EQ(at_completion.acks, 1u);  // released at the first ack
  EXPECT_EQ(dfs.background_acks(), 2u);
  // All three replicas still landed, just in the background.
  uint64_t total_writes = 0;
  for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
    total_writes += dfs.server_store(s).writes();
  }
  EXPECT_EQ(total_writes, 3u);
  // The quorum completion is no later than a full-set write of the same
  // block from an identical substrate.
  sim::Simulator full_sim;
  net::NetworkModel full_net;
  net::RpcSystem full_rpc(&full_sim, &full_net, Rng(2));
  DistributedFileSystem full_dfs(&full_sim, &full_rpc, SmallParams(), Rng(3));
  SimTime full_time;
  full_dfs.Write(client_, 7, 8192, 3,
                 [&](const IoResult&) { full_time = full_sim.Now(); });
  full_sim.Run();
  EXPECT_LE(quorum_time, full_time);
}

TEST_F(DfsTest, WriteFailsWhenQuorumUnreachable) {
  net::FaultModel faults{Rng(9)};
  // Every fileserver node is down for the whole test window.
  for (uint32_t s = 0; s < 4; ++s) {
    faults.AddOutage({net::NodeId{0, 100, s}, SimTime::Zero(),
                      SimTime::FromSeconds(100)});
  }
  rpc_.set_fault_model(&faults);
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  dfs.Write(client_, 7, 4096, /*replication=*/2, /*quorum_acks=*/2,
            [&](const IoResult& r) {
              done = true;
              EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
              EXPECT_EQ(r.acks, 0u);
            });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(dfs.failed_writes(), 1u);
}

TEST_F(DfsTest, ReadRetriesThroughTransientFaultAndReportsAttempts) {
  net::FaultModel faults{Rng(9)};
  net::FaultSpec errors;
  errors.error_probability = 1.0;
  faults.SetMethodFaults("dfs.Read", errors);
  rpc_.set_fault_model(&faults);
  DfsParams params = SmallParams();
  params.read_policy.max_attempts = 2;
  params.read_policy.backoff_base = SimTime::FromSeconds(1);
  DistributedFileSystem dfs(&simulator_, &rpc_, params, Rng(3));
  // Heal the fault before the backed-off retry fires.
  simulator_.Schedule(SimTime::FromSeconds(0.5), [&]() {
    faults.SetMethodFaults("dfs.Read", net::FaultSpec{});
  });
  bool done = false;
  dfs.Read(client_, 42, 4096, [&](const IoResult& r) {
    done = true;
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_GT(r.wasted_time, SimTime::Zero());
  });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(dfs.failed_reads(), 0u);
}

TEST_F(DfsTest, ReadExhaustingPolicySurfacesError) {
  net::FaultModel faults{Rng(9)};
  net::FaultSpec errors;
  errors.error_probability = 1.0;
  faults.SetMethodFaults("dfs.Read", errors);
  rpc_.set_fault_model(&faults);
  DfsParams params = SmallParams();
  params.read_policy.max_attempts = 2;
  DistributedFileSystem dfs(&simulator_, &rpc_, params, Rng(3));
  bool done = false;
  dfs.Read(client_, 42, 4096, [&](const IoResult& r) {
    done = true;
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(r.attempts, 2u);
  });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(dfs.failed_reads(), 1u);
}

TEST_F(DfsTest, HedgedReadCutsInjectedSlowdownTail) {
  net::FaultModel faults{Rng(9)};
  net::FaultSpec slow;
  slow.slowdown_probability = 1.0;
  slow.slowdown_floor = SimTime::Millis(20);
  slow.slowdown_ceil = SimTime::Millis(20);
  faults.SetMethodFaults("dfs.Read", slow);
  rpc_.set_fault_model(&faults);
  DfsParams params = SmallParams();
  params.read_policy.max_attempts = 2;
  params.read_policy.hedge_delay = SimTime::Millis(1);
  DistributedFileSystem dfs(&simulator_, &rpc_, params, Rng(3));
  bool done = false;
  dfs.Read(client_, 42, 4096, [&](const IoResult& r) {
    done = true;
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.hedged);
  });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(rpc_.hedges_issued(), 1u);
  EXPECT_EQ(rpc_.cancelled_attempts(), 1u);
}

}  // namespace
}  // namespace hyperprof::storage
