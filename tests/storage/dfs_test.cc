#include "storage/dfs.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace hyperprof::storage {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : rpc_(&simulator_, &network_, Rng(2)) {}

  DfsParams SmallParams() {
    DfsParams params;
    params.num_fileservers = 4;
    params.store.ram_bytes = 1 << 20;
    params.store.ssd_bytes = 8 << 20;
    return params;
  }

  sim::Simulator simulator_;
  net::NetworkModel network_;
  net::RpcSystem rpc_;
  net::NodeId client_{0, 0, 1};
};

TEST_F(DfsTest, ReadCompletesWithTimes) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  IoResult result;
  bool done = false;
  dfs.Read(client_, 42, 4096, [&](const IoResult& r) {
    result = r;
    done = true;
  });
  simulator_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.served_by, Tier::kHdd);  // cold
  EXPECT_GT(result.total_time, result.device_time);
  EXPECT_GT(result.network_time, SimTime::Zero());
}

TEST_F(DfsTest, SecondReadHitsRam) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  Tier second_tier = Tier::kHdd;
  dfs.Read(client_, 42, 4096, [&](const IoResult&) {
    dfs.Read(client_, 42, 4096,
             [&](const IoResult& r) { second_tier = r.served_by; });
  });
  simulator_.Run();
  EXPECT_EQ(second_tier, Tier::kRam);
}

TEST_F(DfsTest, BlocksSpreadAcrossFileservers) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  std::vector<int> hits(4, 0);
  for (uint64_t block = 0; block < 200; ++block) {
    ++hits[dfs.HomeServer(block)];
  }
  for (int count : hits) {
    EXPECT_GT(count, 20);  // roughly uniform placement
  }
}

TEST_F(DfsTest, HomeServerIsStable) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  for (uint64_t block = 0; block < 50; ++block) {
    EXPECT_EQ(dfs.HomeServer(block), dfs.HomeServer(block));
  }
}

TEST_F(DfsTest, WriteReplicatesToMultipleServers) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  dfs.Write(client_, 7, 8192, /*replication=*/3,
            [&](const IoResult&) { done = true; });
  simulator_.Run();
  ASSERT_TRUE(done);
  uint64_t total_writes = 0;
  for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
    total_writes += dfs.server_store(s).writes();
  }
  EXPECT_EQ(total_writes, 3u);
}

TEST_F(DfsTest, ReplicationClampedToServerCount) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  bool done = false;
  dfs.Write(client_, 7, 1024, /*replication=*/99,
            [&](const IoResult&) { done = true; });
  simulator_.Run();
  ASSERT_TRUE(done);
  uint64_t total_writes = 0;
  for (uint32_t s = 0; s < dfs.num_fileservers(); ++s) {
    total_writes += dfs.server_store(s).writes();
  }
  EXPECT_EQ(total_writes, 4u);  // clamped to num_fileservers
}

TEST_F(DfsTest, WriteWaitsForSlowestReplica) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  SimTime single_time, replicated_time;
  dfs.Write(client_, 11, 4096, 1,
            [&](const IoResult& r) { single_time = r.total_time; });
  simulator_.Run();
  dfs.Write(client_, 12, 4096, 3,
            [&](const IoResult& r) { replicated_time = r.total_time; });
  simulator_.Run();
  // Max-of-three is stochastically >= a single ack; with jitter it is
  // almost surely strictly larger.
  EXPECT_GE(replicated_time, single_time);
}

TEST_F(DfsTest, PrewarmZipfWarmsHotBlocks) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  dfs.PrewarmZipf(/*ram_blocks=*/10, /*ssd_blocks=*/50, 4096);
  Tier hot_tier = Tier::kHdd, warm_tier = Tier::kHdd,
       cold_tier = Tier::kRam;
  dfs.Read(client_, 5, 4096, [&](const IoResult& r) {
    hot_tier = r.served_by;
  });
  dfs.Read(client_, 30, 4096, [&](const IoResult& r) {
    warm_tier = r.served_by;
  });
  dfs.Read(client_, 5000, 4096, [&](const IoResult& r) {
    cold_tier = r.served_by;
  });
  simulator_.Run();
  EXPECT_EQ(hot_tier, Tier::kRam);
  EXPECT_EQ(warm_tier, Tier::kSsd);
  EXPECT_EQ(cold_tier, Tier::kHdd);
}

TEST_F(DfsTest, TierServeFractionsAggregateAcrossServers) {
  DistributedFileSystem dfs(&simulator_, &rpc_, SmallParams(), Rng(3));
  dfs.PrewarmZipf(100, 100, 4096);
  int outstanding = 0;
  for (uint64_t block = 0; block < 100; ++block) {
    ++outstanding;
    dfs.Read(client_, block, 4096, [&](const IoResult&) { --outstanding; });
  }
  simulator_.Run();
  EXPECT_EQ(outstanding, 0);
  EXPECT_NEAR(dfs.TierServeFraction(Tier::kRam), 1.0, 1e-9);
}

}  // namespace
}  // namespace hyperprof::storage
