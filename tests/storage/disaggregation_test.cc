#include "storage/disaggregation.h"

#include <gtest/gtest.h>

namespace hyperprof::storage {
namespace {

TEST(DisaggregationTest, AlignedPeaksSaveNothing) {
  DemandSeries a{"a", {1, 5, 2}};
  DemandSeries b{"b", {2, 10, 4}};
  DisaggregationStudy study = AnalyzeDisaggregation({a, b});
  EXPECT_DOUBLE_EQ(study.sum_of_peaks, 15.0);
  EXPECT_DOUBLE_EQ(study.peak_of_sum, 15.0);
  EXPECT_DOUBLE_EQ(study.SavingsFraction(), 0.0);
}

TEST(DisaggregationTest, AntiCorrelatedPeaksSave) {
  DemandSeries a{"a", {10, 1}};
  DemandSeries b{"b", {1, 10}};
  DisaggregationStudy study = AnalyzeDisaggregation({a, b});
  EXPECT_DOUBLE_EQ(study.sum_of_peaks, 20.0);
  EXPECT_DOUBLE_EQ(study.peak_of_sum, 11.0);
  EXPECT_NEAR(study.SavingsFraction(), 0.45, 1e-12);
}

TEST(DisaggregationTest, PoolNeverWorseThanDedicated) {
  Rng rng(5);
  std::vector<DemandSeries> series;
  for (int p = 0; p < 4; ++p) {
    DiurnalParams params;
    params.platform = "p" + std::to_string(p);
    params.base_bytes = 100;
    params.peak_bytes = 50 + 20 * p;
    params.peak_hour = 6.0 * p;
    series.push_back(GenerateDiurnalDemand(params, 288, rng));
  }
  DisaggregationStudy study = AnalyzeDisaggregation(series);
  EXPECT_LE(study.peak_of_sum, study.sum_of_peaks + 1e-9);
  EXPECT_GT(study.SavingsFraction(), 0.0);
}

TEST(DisaggregationTest, EmptyInputIsZero) {
  DisaggregationStudy study = AnalyzeDisaggregation({});
  EXPECT_EQ(study.sum_of_peaks, 0.0);
  EXPECT_EQ(study.SavingsFraction(), 0.0);
}

TEST(DiurnalTest, PeaksNearConfiguredHour) {
  Rng rng(7);
  DiurnalParams params;
  params.platform = "serving";
  params.base_bytes = 100;
  params.peak_bytes = 100;
  params.peak_hour = 15.0;
  params.noise_sigma = 0.0;  // deterministic shape
  DemandSeries series = GenerateDiurnalDemand(params, 24 * 60, rng);
  size_t argmax = 0;
  for (size_t t = 1; t < series.demand_bytes.size(); ++t) {
    if (series.demand_bytes[t] > series.demand_bytes[argmax]) argmax = t;
  }
  double peak_hour = 24.0 * static_cast<double>(argmax) /
                     static_cast<double>(series.demand_bytes.size());
  EXPECT_NEAR(peak_hour, 15.0, 0.1);
  // Trough is half a day away with demand == base.
  double trough = *std::min_element(series.demand_bytes.begin(),
                                    series.demand_bytes.end());
  EXPECT_NEAR(trough, 100.0, 1.0);
}

TEST(DiurnalTest, NoiseIsMultiplicativeAndSeedStable) {
  DiurnalParams params;
  params.base_bytes = 50;
  params.peak_bytes = 10;
  Rng a(9), b(9);
  DemandSeries first = GenerateDiurnalDemand(params, 100, a);
  DemandSeries second = GenerateDiurnalDemand(params, 100, b);
  EXPECT_EQ(first.demand_bytes, second.demand_bytes);
  for (double demand : first.demand_bytes) {
    EXPECT_GT(demand, 0.0);
  }
}

}  // namespace
}  // namespace hyperprof::storage
