#include "storage/lru_cache.h"

#include <gtest/gtest.h>

namespace hyperprof::storage {
namespace {

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(1024);
  EXPECT_FALSE(cache.Touch(1));
  cache.Insert(1, 100);
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  cache.Insert(3, 100);
  cache.Touch(1);          // 1 is now MRU; 2 is LRU
  cache.Insert(4, 100);    // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, OversizedBlockNotAdmitted) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Insert(1, 200));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, ReinsertUpdatesSize) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(1, 250);
  EXPECT_EQ(cache.used_bytes(), 250u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCacheTest, ReinsertLargerEvictsOthers) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  cache.Insert(2, 250);  // 1 must go
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_LE(cache.used_bytes(), 300u);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(300);
  cache.Insert(1, 100);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, ContainsDoesNotPromote) {
  LruCache cache(200);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  // Contains(1) must not promote 1; inserting 3 should evict 1 (LRU).
  EXPECT_TRUE(cache.Contains(1));
  cache.Insert(3, 100);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, MultipleEvictionsToFit) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  cache.Insert(3, 100);
  cache.Insert(4, 300);  // evicts all three
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(LruCacheTest, ZeroCapacityAdmitsNothing) {
  LruCache cache(0);
  EXPECT_FALSE(cache.Insert(1, 1));
  EXPECT_FALSE(cache.Touch(1));
}

}  // namespace
}  // namespace hyperprof::storage
