#include "storage/lru_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <random>
#include <unordered_map>
#include <utility>

namespace hyperprof::storage {
namespace {

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(1024);
  EXPECT_FALSE(cache.Touch(1));
  cache.Insert(1, 100);
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  cache.Insert(3, 100);
  cache.Touch(1);          // 1 is now MRU; 2 is LRU
  cache.Insert(4, 100);    // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, OversizedBlockNotAdmitted) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Insert(1, 200));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, ReinsertUpdatesSize) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(1, 250);
  EXPECT_EQ(cache.used_bytes(), 250u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCacheTest, ReinsertLargerEvictsOthers) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  cache.Insert(2, 250);  // 1 must go
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_LE(cache.used_bytes(), 300u);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(300);
  cache.Insert(1, 100);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, ContainsDoesNotPromote) {
  LruCache cache(200);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  // Contains(1) must not promote 1; inserting 3 should evict 1 (LRU).
  EXPECT_TRUE(cache.Contains(1));
  cache.Insert(3, 100);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, MultipleEvictionsToFit) {
  LruCache cache(300);
  cache.Insert(1, 100);
  cache.Insert(2, 100);
  cache.Insert(3, 100);
  cache.Insert(4, 300);  // evicts all three
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(LruCacheTest, ZeroCapacityAdmitsNothing) {
  LruCache cache(0);
  EXPECT_FALSE(cache.Insert(1, 1));
  EXPECT_FALSE(cache.Touch(1));
}

namespace {

// Straightforward list+map LRU with the documented semantics, used as the
// oracle for the open-addressing implementation.
class ReferenceLru {
 public:
  explicit ReferenceLru(uint64_t capacity) : capacity_(capacity) {}

  bool Touch(uint64_t id) {
    auto it = map_.find(id);
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  bool Insert(uint64_t id, uint64_t bytes) {
    if (bytes > capacity_) return false;
    auto it = map_.find(id);
    if (it != map_.end()) {
      used_ -= it->second->second;
      it->second->second = bytes;
      used_ += bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
      Evict(0);
      return true;
    }
    Evict(bytes);
    lru_.emplace_front(id, bytes);
    map_[id] = lru_.begin();
    used_ += bytes;
    return true;
  }

  bool Erase(uint64_t id) {
    auto it = map_.find(id);
    if (it == map_.end()) return false;
    used_ -= it->second->second;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
  }

  bool Contains(uint64_t id) const { return map_.count(id) > 0; }
  uint64_t used() const { return used_; }
  size_t size() const { return map_.size(); }
  uint64_t evictions() const { return evictions_; }

 private:
  void Evict(uint64_t incoming) {
    while (!lru_.empty() && used_ + incoming > capacity_) {
      used_ -= lru_.back().second;
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }

  uint64_t capacity_;
  uint64_t used_ = 0;
  std::list<std::pair<uint64_t, uint64_t>> lru_;
  std::unordered_map<uint64_t, decltype(lru_)::iterator> map_;
  uint64_t evictions_ = 0;
};

}  // namespace

TEST(LruCacheTest, MatchesReferenceModelUnderChurn) {
  // Heavy mixed workload over a small key space so hits, refreshes,
  // evictions, and erases all fire constantly; every observable must track
  // the oracle exactly, including eviction order.
  LruCache cache(4096);
  ReferenceLru ref(4096);
  std::mt19937_64 rng(1234);
  for (int step = 0; step < 200000; ++step) {
    const uint64_t id = rng() % 512;
    switch (rng() % 4) {
      case 0:
        EXPECT_EQ(cache.Touch(id), ref.Touch(id));
        break;
      case 1:
      case 2: {
        const uint64_t bytes = 1 + rng() % 300;
        EXPECT_EQ(cache.Insert(id, bytes), ref.Insert(id, bytes));
        break;
      }
      case 3:
        EXPECT_EQ(cache.Erase(id), ref.Erase(id));
        break;
    }
    ASSERT_EQ(cache.used_bytes(), ref.used());
    ASSERT_EQ(cache.entry_count(), ref.size());
    ASSERT_EQ(cache.evictions(), ref.evictions());
  }
  for (uint64_t id = 0; id < 512; ++id) {
    ASSERT_EQ(cache.Contains(id), ref.Contains(id)) << "id " << id;
  }
}

}  // namespace
}  // namespace hyperprof::storage
