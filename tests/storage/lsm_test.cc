#include "storage/lsm.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"

namespace hyperprof::storage {
namespace {

LsmEntry Entry(const std::string& key, const std::string& value,
               uint64_t sequence, bool deleted = false) {
  return LsmEntry{key, value, sequence, deleted};
}

TEST(SsTableTest, FindAndBounds) {
  SsTable table({Entry("b", "1", 1), Entry("d", "2", 2), Entry("f", "3", 3)});
  EXPECT_EQ(table.min_key(), "b");
  EXPECT_EQ(table.max_key(), "f");
  ASSERT_NE(table.Find("d"), nullptr);
  EXPECT_EQ(table.Find("d")->value, "2");
  EXPECT_EQ(table.Find("c"), nullptr);
  EXPECT_EQ(table.Find("a"), nullptr);
  EXPECT_EQ(table.Find("g"), nullptr);
}

TEST(SsTableTest, ScanRange) {
  SsTable table({Entry("a", "1", 1), Entry("c", "2", 2), Entry("e", "3", 3)});
  auto hits = table.Scan("b", "f");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->key, "c");
  EXPECT_EQ(hits[1]->key, "e");
}

TEST(SsTableTest, Overlaps) {
  SsTable table({Entry("c", "1", 1), Entry("g", "2", 2)});
  EXPECT_TRUE(table.Overlaps("a", "d"));
  EXPECT_TRUE(table.Overlaps("d", "e"));
  EXPECT_TRUE(table.Overlaps("g", "z"));
  EXPECT_FALSE(table.Overlaps("a", "b"));
  EXPECT_FALSE(table.Overlaps("h", "z"));
}

TEST(MergeRunsTest, NewestVersionWins) {
  SsTable newer({Entry("a", "new", 5), Entry("c", "3", 6)});
  SsTable older({Entry("a", "old", 1), Entry("b", "2", 2)});
  auto merged = MergeRuns({&newer, &older}, false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, "a");
  EXPECT_EQ(merged[0].value, "new");
  EXPECT_EQ(merged[1].key, "b");
  EXPECT_EQ(merged[2].key, "c");
}

TEST(MergeRunsTest, TombstonesMaskAndDrop) {
  SsTable newer({Entry("a", "", 5, /*deleted=*/true)});
  SsTable older({Entry("a", "old", 1)});
  auto kept = MergeRuns({&newer, &older}, /*drop_tombstones=*/false);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept[0].deleted);
  auto dropped = MergeRuns({&newer, &older}, /*drop_tombstones=*/true);
  EXPECT_TRUE(dropped.empty());
}

TEST(LsmTreeTest, PutGetRoundTrip) {
  LsmTree tree;
  tree.Put("k1", "v1");
  tree.Put("k2", "v2");
  EXPECT_EQ(tree.Get("k1"), "v1");
  EXPECT_EQ(tree.Get("k2"), "v2");
  EXPECT_EQ(tree.Get("k3"), std::nullopt);
}

TEST(LsmTreeTest, OverwriteTakesLatest) {
  LsmTree tree;
  tree.Put("k", "old");
  tree.Put("k", "new");
  EXPECT_EQ(tree.Get("k"), "new");
}

TEST(LsmTreeTest, DeleteMasksValue) {
  LsmTree tree;
  tree.Put("k", "v");
  tree.Delete("k");
  EXPECT_EQ(tree.Get("k"), std::nullopt);
}

TEST(LsmTreeTest, DeleteSurvivesFlush) {
  LsmParams params;
  params.memtable_flush_bytes = 1 << 20;
  LsmTree tree(params);
  tree.Put("k", "v");
  tree.Flush();
  tree.Delete("k");
  tree.Flush();
  EXPECT_EQ(tree.Get("k"), std::nullopt);
}

TEST(LsmTreeTest, GetAfterFlushReadsSsTables) {
  LsmTree tree;
  tree.Put("k", "v");
  tree.Flush();
  EXPECT_EQ(tree.memtable_bytes(), 0u);
  EXPECT_EQ(tree.Get("k"), "v");
  EXPECT_GT(tree.stats().sstable_reads, 0u);
}

TEST(LsmTreeTest, AutomaticFlushAtThreshold) {
  LsmParams params;
  params.memtable_flush_bytes = 256;
  LsmTree tree(params);
  for (int i = 0; i < 50; ++i) {
    tree.Put(StrFormat("key%04d", i), std::string(32, 'x'));
  }
  EXPECT_GT(tree.stats().flushes, 0u);
}

TEST(LsmTreeTest, CompactionTriggersAtL0Threshold) {
  LsmParams params;
  params.memtable_flush_bytes = 1 << 20;
  params.level0_compaction_trigger = 2;
  LsmTree tree(params);
  for (int run = 0; run < 4; ++run) {
    for (int i = 0; i < 10; ++i) {
      tree.Put(StrFormat("key%02d", i), StrFormat("run%d", run));
    }
    tree.Flush();
  }
  EXPECT_GT(tree.stats().compactions, 0u);
  // All versions resolve to the newest run.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(tree.Get(StrFormat("key%02d", i)), "run3");
  }
}

TEST(LsmTreeTest, ScanMergesAllSources) {
  LsmParams params;
  params.memtable_flush_bytes = 1 << 20;
  LsmTree tree(params);
  tree.Put("a", "1");
  tree.Flush();
  tree.Put("b", "2");
  tree.Flush();
  tree.Put("c", "3");  // stays in memtable
  tree.Delete("b");    // tombstone in memtable
  auto rows = tree.Scan("a", "z");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[1].first, "c");
}

TEST(LsmTreeTest, ScanHonorsRange) {
  LsmTree tree;
  for (char c = 'a'; c <= 'f'; ++c) {
    tree.Put(std::string(1, c), "v");
  }
  auto rows = tree.Scan("b", "e");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.front().first, "b");
  EXPECT_EQ(rows.back().first, "d");
}

TEST(LsmTreeTest, MatchesReferenceMapUnderRandomOps) {
  LsmParams params;
  params.memtable_flush_bytes = 512;
  params.level0_compaction_trigger = 3;
  LsmTree tree(params);
  std::map<std::string, std::string> reference;
  Rng rng(7);
  for (int op = 0; op < 5000; ++op) {
    std::string key = StrFormat("key%03d", (int)rng.NextBounded(200));
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      std::string value = StrFormat("v%d", op);
      tree.Put(key, value);
      reference[key] = value;
    } else if (dice < 0.75) {
      tree.Delete(key);
      reference.erase(key);
    } else {
      auto expected = reference.find(key);
      auto actual = tree.Get(key);
      if (expected == reference.end()) {
        EXPECT_EQ(actual, std::nullopt) << key << " op " << op;
      } else {
        EXPECT_EQ(actual, expected->second) << key << " op " << op;
      }
    }
  }
  // Final full comparison through Scan.
  auto rows = tree.Scan("", "zzz");
  EXPECT_EQ(rows.size(), reference.size());
  for (const auto& [key, value] : rows) {
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << key;
    EXPECT_EQ(value, it->second);
  }
}

TEST(LsmTreeTest, DeeperLevelsStayNonOverlapping) {
  LsmParams params;
  params.memtable_flush_bytes = 512;
  params.level0_compaction_trigger = 2;
  params.level_size_multiplier = 2;
  LsmTree tree(params);
  Rng rng(11);
  for (int op = 0; op < 4000; ++op) {
    tree.Put(StrFormat("key%05d", (int)rng.NextBounded(3000)),
             std::string(16, 'v'));
  }
  tree.CompactAll();
  // After full compaction, L0 is empty and data lives deeper.
  EXPECT_EQ(tree.TablesAtLevel(0), 0u);
  uint64_t deep_bytes = 0;
  for (size_t level = 1; level < tree.level_count(); ++level) {
    deep_bytes += tree.LevelBytes(level);
  }
  EXPECT_GT(deep_bytes, 0u);
}

TEST(LsmTreeTest, WriteAmplificationReported) {
  LsmParams params;
  params.memtable_flush_bytes = 512;
  params.level0_compaction_trigger = 2;
  LsmTree tree(params);
  for (int i = 0; i < 2000; ++i) {
    tree.Put(StrFormat("key%03d", i % 100), std::string(24, 'x'));
  }
  tree.CompactAll();
  // Rewriting the same 100 keys repeatedly must cost more than 1x.
  EXPECT_GT(tree.stats().WriteAmplification(), 1.0);
  EXPECT_LT(tree.stats().WriteAmplification(), 100.0);
}

TEST(LsmTreeTest, StatsCountOperations) {
  LsmTree tree;
  tree.Put("a", "1");
  tree.Get("a");
  tree.Get("missing");
  EXPECT_EQ(tree.stats().writes, 1u);
  EXPECT_EQ(tree.stats().reads, 2u);
  EXPECT_EQ(tree.stats().memtable_hits, 1u);
}


TEST(LsmTreeTest, TombstoneVisibilityAcrossCompaction) {
  // A tombstone must keep masking the value through flushes and full
  // compaction, and a re-put after compaction must resurrect the key.
  LsmParams params;
  params.memtable_flush_bytes = 256;
  params.level0_compaction_trigger = 2;
  LsmTree tree(params);
  for (int i = 0; i < 50; ++i) {
    tree.Put(StrFormat("key%02d", i), std::string(16, 'v'));
  }
  tree.Flush();
  tree.Delete("key07");
  EXPECT_EQ(tree.Get("key07"), std::nullopt);  // memtable tombstone
  tree.Flush();
  EXPECT_EQ(tree.Get("key07"), std::nullopt);  // L0 tombstone over L0 value
  tree.CompactAll();
  EXPECT_EQ(tree.Get("key07"), std::nullopt);  // survives compaction
  // Neighbours are untouched and scans agree with point reads.
  EXPECT_EQ(tree.Get("key06"), std::string(16, 'v'));
  auto scanned = tree.Scan("key06", "key09");
  ASSERT_EQ(scanned.size(), 2u);
  EXPECT_EQ(scanned[0].first, "key06");
  EXPECT_EQ(scanned[1].first, "key08");
  // Resurrect after compaction: the new version wins.
  tree.Put("key07", "reborn");
  EXPECT_EQ(tree.Get("key07"), "reborn");
}

TEST(LsmTreeTest, BottomLevelCompactionDropsTombstoneBytes) {
  // Delete every key, then fully compact: bottom-level compaction drops
  // tombstone+value pairs entirely, so the surviving on-disk bytes must
  // collapse to (almost) nothing and scans must come back empty.
  LsmParams params;
  params.memtable_flush_bytes = 512;
  params.level0_compaction_trigger = 2;
  LsmTree tree(params);
  for (int i = 0; i < 200; ++i) {
    tree.Put(StrFormat("key%03d", i), std::string(32, 'x'));
  }
  tree.Flush();
  tree.CompactAll();
  uint64_t populated_bytes = 0;
  for (size_t level = 0; level < tree.level_count(); ++level) {
    populated_bytes += tree.LevelBytes(level);
  }
  ASSERT_GT(populated_bytes, 0u);
  for (int i = 0; i < 200; ++i) {
    tree.Delete(StrFormat("key%03d", i));
  }
  tree.Flush();
  tree.CompactAll();
  EXPECT_TRUE(tree.Scan("key", "kez").empty());
  uint64_t remaining_bytes = 0;
  for (size_t level = 0; level < tree.level_count(); ++level) {
    remaining_bytes += tree.LevelBytes(level);
  }
  EXPECT_LT(remaining_bytes, populated_bytes / 4);
}

TEST(LsmTreeTest, WriteAmpCountersAreConsistent) {
  // The write-amplification ledger: every flushed/compacted byte is
  // accounted in compacted_bytes, user_bytes tracks logical writes only,
  // and the ratio is >= 1 once data has been flushed at least once.
  LsmParams params;
  params.memtable_flush_bytes = 1024;
  params.level0_compaction_trigger = 2;
  LsmTree tree(params);
  EXPECT_EQ(tree.stats().WriteAmplification(), 0.0);  // no writes yet
  for (int i = 0; i < 500; ++i) {
    tree.Put(StrFormat("key%04d", i), std::string(40, 'y'));
  }
  const LsmStats& stats = tree.stats();
  EXPECT_EQ(stats.writes, 500u);
  EXPECT_GT(stats.user_bytes, 500u * 40u);
  EXPECT_GT(stats.flushes, 0u);
  tree.Flush();
  tree.CompactAll();
  // Everything was flushed once and compacted at least once on top.
  EXPECT_GE(tree.stats().compacted_bytes, tree.stats().user_bytes);
  EXPECT_GE(tree.stats().WriteAmplification(), 1.0);
  uint64_t before = tree.stats().compacted_bytes;
  // Deletes are logical writes too: they add user bytes and eventually
  // rewrite bytes through flush/compaction.
  for (int i = 0; i < 500; ++i) tree.Delete(StrFormat("key%04d", i));
  tree.Flush();
  tree.CompactAll();
  EXPECT_EQ(tree.stats().writes, 1000u);
  EXPECT_GT(tree.stats().compacted_bytes, before);
}

}  // namespace
}  // namespace hyperprof::storage
