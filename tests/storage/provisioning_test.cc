#include "storage/provisioning.h"

#include <cmath>

#include <gtest/gtest.h>

#include "platforms/platforms.h"

namespace hyperprof::storage {
namespace {

TEST(GeneralizedHarmonicTest, SmallExactValues) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(2, 1.0), 1.5);
  EXPECT_NEAR(GeneralizedHarmonic(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25,
              1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(3, 2.0), 1.0 + 0.25 + 1.0 / 9, 1e-12);
}

TEST(GeneralizedHarmonicTest, ZeroTermsIsZero) {
  EXPECT_EQ(GeneralizedHarmonic(0, 1.0), 0.0);
}

TEST(GeneralizedHarmonicTest, MonotonicInK) {
  double prev = 0;
  for (uint64_t k : {1ULL, 10ULL, 100ULL, 10000ULL, 10000000ULL}) {
    double h = GeneralizedHarmonic(k, 0.9);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(GeneralizedHarmonicTest, TailApproximationAccuracy) {
  // Compare the head+integral approximation against a direct sum just
  // past the exact-head boundary.
  const uint64_t k = 1100000;
  const double s = 0.85;
  double direct = 0;
  for (uint64_t i = 1; i <= k; ++i) {
    direct += std::pow(static_cast<double>(i), -s);
  }
  EXPECT_NEAR(GeneralizedHarmonic(k, s) / direct, 1.0, 1e-6);
}

TEST(ZipfMassTest, FullRangeIsOne) {
  EXPECT_DOUBLE_EQ(ZipfMassFraction(100, 100, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(ZipfMassFraction(200, 100, 0.9), 1.0);
}

TEST(ZipfMassTest, HeadConcentration) {
  // With s=1, the top 1% of a million keys holds a large mass share.
  double mass = ZipfMassFraction(10000, 1000000, 1.0);
  EXPECT_GT(mass, 0.5);
  EXPECT_LT(mass, 1.0);
}

TEST(MinKeysForMassTest, InvertsZipfMass) {
  const uint64_t n = 1 << 20;
  const double s = 0.9;
  for (double target : {0.1, 0.5, 0.9}) {
    uint64_t k = MinKeysForMass(target, n, s);
    EXPECT_GE(ZipfMassFraction(k, n, s), target);
    if (k > 1) {
      EXPECT_LT(ZipfMassFraction(k - 1, n, s), target);
    }
  }
}

TEST(MinKeysForMassTest, Extremes) {
  EXPECT_EQ(MinKeysForMass(0.0, 100, 0.9), 0u);
  EXPECT_EQ(MinKeysForMass(1.0, 100, 0.9), 100u);
}

TEST(ProvisionTest, HigherHitTargetNeedsMoreRam) {
  StorageProfile low = platforms::SpannerStorageProfile();
  StorageProfile high = low;
  high.ram_hit_target = low.ram_hit_target + 0.2;
  high.ram_ssd_hit_target =
      std::max(high.ram_hit_target, high.ram_ssd_hit_target);
  EXPECT_GT(ProvisionForProfile(high).ram_bytes,
            ProvisionForProfile(low).ram_bytes);
}

TEST(ProvisionTest, HddScalesWithReplication) {
  StorageProfile base = platforms::BigQueryStorageProfile();
  StorageProfile more = base;
  more.replication = base.replication * 2;
  EXPECT_NEAR(ProvisionForProfile(more).hdd_bytes,
              2 * ProvisionForProfile(base).hdd_bytes, 1.0);
}

// Table 1 reproduction: the provisioning model with the calibrated
// platform profiles lands near the paper's published capacity ratios.
struct RatioCase {
  const char* platform;
  double paper_ssd_per_ram;
  double paper_hdd_per_ram;
};

class Table1Test : public ::testing::TestWithParam<RatioCase> {};

TEST_P(Table1Test, RatiosNearPaper) {
  const RatioCase& expected = GetParam();
  StorageProfile profile;
  if (std::string(expected.platform) == "Spanner") {
    profile = platforms::SpannerStorageProfile();
  } else if (std::string(expected.platform) == "BigTable") {
    profile = platforms::BigTableStorageProfile();
  } else {
    profile = platforms::BigQueryStorageProfile();
  }
  TierSizes sizes = ProvisionForProfile(profile);
  // Shape tolerance: within 35% relative of the published ratio (the
  // published values come from fleet accounting we can only approximate).
  EXPECT_NEAR(sizes.SsdPerRam() / expected.paper_ssd_per_ram, 1.0, 0.35)
      << profile.platform << " SSD:RAM = " << sizes.SsdPerRam();
  EXPECT_NEAR(sizes.HddPerRam() / expected.paper_hdd_per_ram, 1.0, 0.35)
      << profile.platform << " HDD:RAM = " << sizes.HddPerRam();
}

INSTANTIATE_TEST_SUITE_P(
    PaperRatios, Table1Test,
    ::testing::Values(RatioCase{"Spanner", 16, 164},
                      RatioCase{"BigTable", 7, 777},
                      RatioCase{"BigQuery", 8, 90}),
    [](const ::testing::TestParamInfo<RatioCase>& info) {
      return info.param.platform;
    });

TEST(TierSizesTest, RatioStringFormat) {
  TierSizes sizes;
  sizes.ram_bytes = 1;
  sizes.ssd_bytes = 16;
  sizes.hdd_bytes = 164;
  EXPECT_EQ(sizes.RatioString(), "1 : 16 : 164");
}

}  // namespace
}  // namespace hyperprof::storage
