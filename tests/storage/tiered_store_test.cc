#include "storage/tiered_store.h"

#include <gtest/gtest.h>

namespace hyperprof::storage {
namespace {

TieredStoreParams SmallParams() {
  TieredStoreParams params;
  params.ram_bytes = 1 << 20;
  params.ssd_bytes = 4 << 20;
  // Deterministic latencies for assertions.
  params.ram.latency_sigma = 0;
  params.ssd.latency_sigma = 0;
  params.hdd.latency_sigma = 0;
  return params;
}

TEST(TieredStoreTest, ColdReadServedByHdd) {
  TieredStore store(SmallParams());
  Rng rng(1);
  AccessResult result = store.Read(42, 4096, rng);
  EXPECT_EQ(result.served_by, Tier::kHdd);
  EXPECT_GT(result.device_time, SimTime::Millis(7));
}

TEST(TieredStoreTest, ReadFillsUpperTiers) {
  TieredStore store(SmallParams());
  Rng rng(1);
  store.Read(42, 4096, rng);
  AccessResult second = store.Read(42, 4096, rng);
  EXPECT_EQ(second.served_by, Tier::kRam);
  EXPECT_LT(second.device_time, SimTime::Micros(5));
}

TEST(TieredStoreTest, SsdHitAfterRamEviction) {
  TieredStoreParams params = SmallParams();
  params.ram_bytes = 8192;  // tiny RAM: two 4K blocks
  TieredStore store(params);
  Rng rng(1);
  store.Read(1, 4096, rng);
  store.Read(2, 4096, rng);
  store.Read(3, 4096, rng);  // evicts 1 from RAM; SSD still has it
  AccessResult result = store.Read(1, 4096, rng);
  EXPECT_EQ(result.served_by, Tier::kSsd);
}

TEST(TieredStoreTest, WriteGoesToSsdLog) {
  TieredStore store(SmallParams());
  Rng rng(1);
  AccessResult result = store.Write(7, 4096, rng);
  EXPECT_EQ(result.served_by, Tier::kSsd);
  // Write buffers in RAM: read hits RAM.
  AccessResult read = store.Read(7, 4096, rng);
  EXPECT_EQ(read.served_by, Tier::kRam);
}

TEST(TieredStoreTest, TierServeFractionsSumToOne) {
  TieredStore store(SmallParams());
  Rng rng(2);
  for (uint64_t id = 0; id < 100; ++id) store.Read(id % 30, 4096, rng);
  double total = store.TierServeFraction(Tier::kRam) +
                 store.TierServeFraction(Tier::kSsd) +
                 store.TierServeFraction(Tier::kHdd);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(store.reads(), 100u);
}

TEST(TieredStoreTest, PrewarmServesFromRam) {
  TieredStore store(SmallParams());
  Rng rng(3);
  store.Prewarm(5, 4096, Tier::kRam);
  AccessResult result = store.Read(5, 4096, rng);
  EXPECT_EQ(result.served_by, Tier::kRam);
}

TEST(TieredStoreTest, PrewarmSsdOnly) {
  TieredStore store(SmallParams());
  Rng rng(3);
  store.Prewarm(5, 4096, Tier::kSsd);
  AccessResult result = store.Read(5, 4096, rng);
  EXPECT_EQ(result.served_by, Tier::kSsd);
}

TEST(TieredStoreTest, DeviceTimeIncludesTransfer) {
  TieredStoreParams params = SmallParams();
  params.ram_bytes = 4 << 20;  // both blocks fit in RAM together
  TieredStore store(params);
  Rng rng(4);
  store.Prewarm(1, 1 << 20, Tier::kRam);
  store.Prewarm(2, 64, Tier::kRam);
  AccessResult big = store.Read(1, 1 << 20, rng);
  AccessResult small = store.Read(2, 64, rng);
  EXPECT_GT(big.device_time, small.device_time);
}

TEST(TieredStoreTest, HddLatencyDominatesHierarchy) {
  TieredStoreParams params = SmallParams();
  TieredStore store(params);
  Rng rng(5);
  AccessResult hdd = store.Read(100, 4096, rng);       // cold
  AccessResult ram = store.Read(100, 4096, rng);       // now hot
  store.Prewarm(200, 4096, Tier::kSsd);
  AccessResult ssd = store.Read(200, 4096, rng);
  EXPECT_GT(hdd.device_time, ssd.device_time);
  EXPECT_GT(ssd.device_time, ram.device_time);
}

}  // namespace
}  // namespace hyperprof::storage
