// Deterministic simulation testing: the fixed-seed fuzz block that CI
// runs, plus tests of the harness itself — scenario generation is a pure
// function of the seed, the invariant checker catches deliberately broken
// runs, digests are sensitive to every recovered bit, and the shrinker
// minimizes failing scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "testing/invariants.h"
#include "testing/scenario.h"
#include "testing/shrink.h"
#include "testing/simtest.h"

namespace hyperprof::testing {
namespace {

// Single-execution options for tests that only need the primary run.
SimtestOptions PrimaryOnly() {
  SimtestOptions options;
  options.check_parallel = false;
  options.check_replay = false;
  options.check_incremental = false;
  return options;
}

TEST(ScenarioGen, PureFunctionOfSeed) {
  for (uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
    Scenario a = ScenarioGen::Generate(seed);
    Scenario b = ScenarioGen::Generate(seed);
    EXPECT_EQ(a.Describe(), b.Describe());
    EXPECT_EQ(a.specs.size(), b.specs.size());
    EXPECT_EQ(a.config.seed, b.config.seed);
  }
  // Adjacent seeds produce different scenarios (the grammar actually
  // consumes the stream).
  EXPECT_NE(ScenarioGen::Generate(1).Describe(),
            ScenarioGen::Generate(2).Describe());
}

TEST(ScenarioGen, SweepsTheBehaviourSpace) {
  // Over a modest seed range every major scenario dimension must vary:
  // platform counts, armed faults, non-plain policies, reservoir
  // retention, and outage windows all appear.
  bool saw_multi_platform = false, saw_faults = false, saw_resilient = false,
       saw_reservoir = false, saw_outage = false, saw_plain = false,
       saw_budgets = false, saw_no_budgets = false, saw_narrow_window = false;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s = ScenarioGen::Generate(seed);
    saw_multi_platform |= s.specs.size() > 1;
    saw_faults |= s.config.fault.Enabled();
    saw_resilient |= !s.config.dfs.read_policy.Plain();
    saw_plain |= s.config.dfs.read_policy.Plain();
    saw_reservoir |= s.config.trace_retention ==
                     profiling::TraceRetention::kSampleReservoir;
    saw_outage |= !s.config.outages.empty();
    bool budgets = s.config.continuous_budget[0] > SimTime::Zero();
    saw_budgets |= budgets;
    saw_no_budgets |= !budgets;
    saw_narrow_window |= s.config.continuous_window <= SimTime::Millis(25);
  }
  EXPECT_TRUE(saw_multi_platform);
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_resilient);
  EXPECT_TRUE(saw_plain);
  EXPECT_TRUE(saw_reservoir);
  EXPECT_TRUE(saw_outage);
  EXPECT_TRUE(saw_budgets);
  EXPECT_TRUE(saw_no_budgets);
  EXPECT_TRUE(saw_narrow_window);
}

TEST(InvariantRegistry, DefaultCatalogue) {
  InvariantRegistry registry = InvariantRegistry::Default();
  EXPECT_GE(registry.size(), 8u);
  auto names = registry.Names();
  auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("attribution-conservation"));
  EXPECT_TRUE(has("span-causality"));
  EXPECT_TRUE(has("tracer-bookkeeping"));
  EXPECT_TRUE(has("kernel-quiesce"));
  EXPECT_TRUE(has("dfs-conservation"));
  EXPECT_TRUE(has("rpc-accounting"));
  EXPECT_TRUE(has("fault-gating"));
  EXPECT_TRUE(has("breakdown-consistency"));
  EXPECT_TRUE(has("shard-exchange"));
  EXPECT_TRUE(has("continuous-windows"));
  EXPECT_TRUE(has("serving-accounting"));
}

// Returns true if `run` has at least one retained trace with a span.
bool HasSpan(const RunArtifacts& run) {
  for (const auto& p : run.platforms) {
    for (const auto& trace : p.traces) {
      if (!trace.spans.empty()) return true;
    }
  }
  return false;
}

// Perturbs the end of the first span found: stretches it one millisecond
// past its trace's end, breaking causality and the attribution bound.
void PerturbOneSpanEnd(RunArtifacts& run) {
  for (auto& p : run.platforms) {
    for (auto& trace : p.traces) {
      if (trace.spans.empty()) continue;
      trace.spans.front().end = trace.end + SimTime::Millis(1);
      return;
    }
  }
}

TEST(Invariants, CleanRunPasses) {
  SeedReport report = RunSeed(1, PrimaryOnly());
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Invariants, PerturbedSpanEndIsCaught) {
  // The acceptance check of the harness: corrupt one span end in an
  // otherwise clean run and the catalogue must flag it.
  SimtestOptions options = PrimaryOnly();
  bool corrupted = false;
  options.corrupt = [&](RunArtifacts& run) {
    ASSERT_TRUE(HasSpan(run));
    PerturbOneSpanEnd(run);
    corrupted = true;
  };
  SeedReport report = RunSeed(1, options);
  ASSERT_TRUE(corrupted);
  ASSERT_FALSE(report.ok());
  bool attribution_or_causality = false;
  for (const auto& v : report.violations) {
    attribution_or_causality |= v.invariant == "attribution-conservation" ||
                                v.invariant == "span-causality" ||
                                v.invariant == "breakdown-consistency";
  }
  EXPECT_TRUE(attribution_or_causality) << report.Summary();
}

TEST(Invariants, PerturbedCountersAreCaught) {
  struct Case {
    const char* expect_invariant;
    std::function<void(RunArtifacts&)> corrupt;
  };
  const Case cases[] = {
      {"tracer-bookkeeping",
       [](RunArtifacts& run) { run.platforms[0].queries_seen += 1; }},
      {"kernel-quiesce",
       [](RunArtifacts& run) { run.platforms[0].pending_events = 3; }},
      {"dfs-conservation",
       [](RunArtifacts& run) {
         run.platforms[0].servers.at(0).tier_reads[0] += 1;
       }},
      {"rpc-accounting",
       [](RunArtifacts& run) {
         run.platforms[0].hedge_wins =
             run.platforms[0].hedges_issued + 1;
       }},
      {"fault-gating",
       [](RunArtifacts& run) {
         run.platforms[0].injected_drops =
             run.platforms[0].fault_decisions + 1;
       }},
      {"shard-exchange",
       [](RunArtifacts& run) {
         // A fused run reporting stranded envelopes is inconsistent either
         // way: fabric activity without shards, or an undrained mailbox.
         run.platforms[0].shard_undelivered = 1;
       }},
      {"shard-exchange",
       [](RunArtifacts& run) {
         // Late deliveries mean a post-horizon hook lied and the
         // conservative window broke — flagged in any mode.
         run.platforms[0].shard_late_deliveries = 1;
       }},
      {"continuous-windows",
       [](RunArtifacts& run) {
         // A query the tracer finished but no window absorbed.
         run.platforms[0].continuous_observed += 1;
       }},
      {"continuous-windows",
       [](RunArtifacts& run) {
         // An anomaly log inconsistent with the overrun counters.
         run.platforms[0].continuous_anomalies_dropped += 1;
       }},
      {"serving-accounting",
       [](RunArtifacts& run) {
         // A serving door that lost a query: neither admitted nor shed.
         run.serving = true;
         run.serve_offered = 10;
         run.serve_admitted = 6;
         run.serve_shed = 3;
         run.serve_completed = 6;
         run.serve_responses = 6;
       }},
      {"serving-accounting",
       [](RunArtifacts& run) {
         // An admitted query that vanished: not completed, not in flight.
         run.serving = true;
         run.serve_offered = 8;
         run.serve_admitted = 8;
         run.serve_completed = 7;
         run.serve_in_flight = 0;
         run.serve_responses = 7;
       }},
      {"serving-accounting",
       [](RunArtifacts& run) {
         // A forged response: more responses than completions.
         run.serving = true;
         run.serve_offered = 4;
         run.serve_admitted = 4;
         run.serve_completed = 4;
         run.serve_responses = 5;
       }},
  };
  for (const auto& c : cases) {
    SimtestOptions options = PrimaryOnly();
    options.corrupt = c.corrupt;
    SeedReport report = RunSeed(1, options);
    ASSERT_FALSE(report.ok()) << c.expect_invariant;
    bool found = false;
    for (const auto& v : report.violations) {
      found |= v.invariant == c.expect_invariant;
    }
    EXPECT_TRUE(found) << "expected " << c.expect_invariant << " in:\n"
                       << report.Summary();
  }
}

TEST(Invariants, ConsistentServingCountersPass) {
  // Balanced door counters (with work still in flight at snapshot time)
  // must not trip the conservation check.
  SimtestOptions options = PrimaryOnly();
  options.corrupt = [](RunArtifacts& run) {
    run.serving = true;
    run.serve_offered = 12;
    run.serve_admitted = 9;
    run.serve_shed = 3;
    run.serve_completed = 7;
    run.serve_in_flight = 2;
    run.serve_responses = 7;
  };
  SeedReport report = RunSeed(1, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Invariants, CorruptionAlsoBreaksReplayDigest) {
  // A corrupted primary run must disagree with its own (uncorrupted)
  // replay: the digest covers every recovered bit.
  SimtestOptions options;
  options.check_parallel = false;
  options.check_replay = true;
  options.check_incremental = false;
  options.corrupt = PerturbOneSpanEnd;
  SeedReport report = RunSeed(1, options);
  bool replay_flagged = false;
  for (const auto& v : report.violations) {
    replay_flagged |= v.invariant == "determinism-replay";
  }
  EXPECT_TRUE(replay_flagged) << report.Summary();
}

TEST(Invariants, CorruptedWindowTotalBreaksReplayDigest) {
  // Window totals and sketch percentiles are folded into the digest: a
  // single-nanosecond perturbation of one window total must break the
  // replay comparison even though no conservation check notices it.
  SimtestOptions options;
  options.check_parallel = false;
  options.check_replay = true;
  options.check_incremental = false;
  options.corrupt = [](RunArtifacts& run) {
    for (auto& p : run.platforms) {
      if (p.windows.empty()) continue;
      p.windows.front().total_nanos[0] += 1;
      return;
    }
    FAIL() << "no continuous windows collected";
  };
  SeedReport report = RunSeed(1, options);
  bool replay_flagged = false;
  for (const auto& v : report.violations) {
    replay_flagged |= v.invariant == "determinism-replay";
  }
  EXPECT_TRUE(replay_flagged) << report.Summary();
}

TEST(Invariants, ShardModeEpochCorruptionsAreCaught) {
  struct Case {
    uint32_t shards;  // forced mode: 0 fused, 2 sharded
    std::function<void(RunArtifacts&)> corrupt;
  };
  const Case cases[] = {
      // A fused platform coalescing epochs has no fabric to coalesce.
      {0, [](RunArtifacts& run) {
         run.platforms[0].shard_coalesced_epochs = 1;
       }},
      // A sharded fabric that carried traffic must have run epochs.
      {2, [](RunArtifacts& run) { run.platforms[0].shard_epochs = 0; }},
  };
  for (const auto& c : cases) {
    SimtestOptions options = PrimaryOnly();
    uint32_t shards = c.shards;
    options.mutate = [shards](Scenario& scenario) {
      scenario.config.shards_per_platform = shards;
      if (shards > 0) {
        for (auto& spec : scenario.specs) spec.worker_cores = 0;
      }
    };
    options.corrupt = c.corrupt;
    SeedReport report = RunSeed(1, options);
    ASSERT_FALSE(report.ok()) << "shards=" << c.shards;
    bool found = false;
    for (const auto& v : report.violations) {
      found |= v.invariant == "shard-exchange";
    }
    EXPECT_TRUE(found) << report.Summary();
  }
}

TEST(Invariants, CorruptedEpochCountBreaksReplayDigest) {
  // The epoch and coalescing counts are folded into the digest (they are
  // schedule- and shard-layout-invariant), so tampering with either must
  // break the replay comparison on a sharded run.
  for (auto corrupt : {
           +[](RunArtifacts& run) { run.platforms[0].shard_epochs += 1; },
           +[](RunArtifacts& run) {
             run.platforms[0].shard_coalesced_epochs += 1;
           },
       }) {
    SimtestOptions options;
    options.check_parallel = false;
    options.check_replay = true;
    options.check_incremental = false;
    options.mutate = [](Scenario& scenario) {
      scenario.config.shards_per_platform = 2;
      for (auto& spec : scenario.specs) spec.worker_cores = 0;
    };
    options.corrupt = corrupt;
    SeedReport report = RunSeed(1, options);
    bool replay_flagged = false;
    for (const auto& v : report.violations) {
      replay_flagged |= v.invariant == "determinism-replay";
    }
    EXPECT_TRUE(replay_flagged) << report.Summary();
  }
}

TEST(Invariants, CorruptionAlsoBreaksIncrementalDigest) {
  // The incremental comparison re-executes the scenario through
  // Start/Advance/Finish; a corrupted primary digest must disagree with
  // that clean re-execution, proving the incremental run actually
  // recomputes (and matches) the full artifact set.
  SimtestOptions options;
  options.check_parallel = false;
  options.check_replay = false;
  options.check_incremental = true;
  options.corrupt = PerturbOneSpanEnd;
  SeedReport report = RunSeed(1, options);
  bool incremental_flagged = false;
  for (const auto& v : report.violations) {
    incremental_flagged |= v.invariant == "determinism-incremental";
  }
  EXPECT_TRUE(incremental_flagged) << report.Summary();
}

TEST(Invariants, IncrementalDigestMatchesOnShardedRun) {
  // The pause-and-resume contract holds for sharded platforms too: the
  // incremental run drives ShardGroup::Advance underneath.
  SimtestOptions options;
  options.check_parallel = false;
  options.check_replay = false;
  options.check_incremental = true;
  options.mutate = [](Scenario& scenario) {
    scenario.config.shards_per_platform = 2;
    for (auto& spec : scenario.specs) spec.worker_cores = 0;
  };
  SeedReport report = RunSeed(1, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Invariants, MidRunProbePassesOnCleanRun) {
  SimtestOptions options;  // parallel + replay on: probed == unprobed
  options.probe_period = SimTime::Millis(5);
  SeedReport report = RunSeed(3, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Shrinker, MinimizesAlongMonotonePredicate) {
  // Failure fires iff queries >= 8: the shrinker must walk the volume down
  // close to the boundary and strip every irrelevant dimension.
  Scenario start = ScenarioGen::Generate(5);
  start.config.queries_per_platform = 100;
  start.config.fault.drop_probability = 0.01;
  ASSERT_GE(start.config.queries_per_platform, 8u);
  size_t executions = 0;
  Shrinker shrinker([&](const Scenario& s) {
    ++executions;
    return s.config.queries_per_platform >= 8;
  });
  ShrinkResult result = shrinker.Minimize(start);
  EXPECT_GE(result.scenario.config.queries_per_platform, 8u);
  EXPECT_LT(result.scenario.config.queries_per_platform, 16u);
  EXPECT_EQ(result.scenario.specs.size(), 1u);
  EXPECT_TRUE(result.scenario.config.outages.empty());
  EXPECT_EQ(result.scenario.config.fault.drop_probability, 0.0);
  EXPECT_TRUE(result.scenario.config.dfs.read_policy.Plain());
  EXPECT_EQ(result.runs, executions);
}

TEST(Shrinker, MinimizesARealInvariantFailure) {
  // End-to-end acceptance: a run corrupted by perturbing one span end
  // fails invariants; shrinking against the real runner must produce a
  // smaller scenario that still fails.
  SimtestOptions options = PrimaryOnly();
  options.corrupt = PerturbOneSpanEnd;
  Scenario start = ScenarioGen::Generate(1);
  ASSERT_FALSE(RunScenario(start, options).ok());
  Shrinker shrinker(
      [&](const Scenario& s) { return !RunScenario(s, options).ok(); },
      /*max_runs=*/40);
  ShrinkResult result = shrinker.Minimize(start);
  EXPECT_GT(result.accepted, 0u);
  EXPECT_LE(result.scenario.config.queries_per_platform,
            start.config.queries_per_platform);
  EXPECT_FALSE(RunScenario(result.scenario, options).ok())
      << result.scenario.Describe();
}

TEST(SimTest, FixedSeedBlock) {
  // The CI fuzz block: 100 scenarios from base seed 1, each run serial,
  // parallel, replayed, and incrementally advanced, with mid-run probing.
  // Reproduce a failure locally with:
  //   simtest_fuzz --seeds 100 --base-seed 1 --shrink
  SimtestOptions options;
  options.probe_period = SimTime::Millis(10);
  FuzzReport fuzz = RunSeedBlock(1, 100, options);
  EXPECT_EQ(fuzz.seeds_run, 100u);
  for (const auto& failure : fuzz.failures) {
    ADD_FAILURE() << failure.Summary();
  }
}

}  // namespace
}  // namespace hyperprof::testing
