// An analytic-query suite in the TPC-H spirit, run through the plan
// executor against brute-force reference computations on the same data —
// the integration test for the analytics core-compute categories.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "workloads/query_plan.h"

namespace hyperprof::relational {
namespace {

class AnalyticSuiteTest : public ::testing::Test {
 protected:
  AnalyticSuiteTest() {
    Rng rng(2024);
    // lineitem(key=partkey, v0=quantity, v1=price)
    lineitem_ = GenerateTable(20000, 2, 400, rng);
    // part(key=partkey, v0=brand)
    part_ = GenerateTable(400, 1, 400, rng);
    // Make part's keys unique 0..399 so the join is a true FK lookup.
    for (size_t i = 0; i < part_.column(0).values.size(); ++i) {
      part_.column(0).values[i] = static_cast<int64_t>(i);
      part_.column(1).values[i] = static_cast<int64_t>(i % 25);  // brand
    }
  }

  Table lineitem_;
  Table part_;
};

TEST_F(AnalyticSuiteTest, Q1PricingSummary) {
  // SELECT partkey, sum(price) FROM lineitem WHERE quantity < 500000
  // GROUP BY partkey
  auto plan = MakeHashAggregate(
      MakeFilter(MakeTableSource(&lineitem_), "v0", Predicate::kLess,
                 500000),
      "key", "v1", AggOp::kSum);
  Table out = plan->Execute();

  std::map<int64_t, int64_t> reference;
  for (size_t i = 0; i < lineitem_.num_rows(); ++i) {
    if (lineitem_.column(1).values[i] < 500000) {
      reference[lineitem_.column(0).values[i]] +=
          lineitem_.column(2).values[i];
    }
  }
  ASSERT_EQ(out.num_rows(), reference.size());
  for (size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_EQ(out.column(1).values[i],
              reference[out.column(0).values[i]]);
  }
}

TEST_F(AnalyticSuiteTest, Q2RevenueByBrand) {
  // SELECT p.brand, sum(l.price) FROM lineitem l JOIN part p
  // ON l.partkey = p.partkey GROUP BY p.brand
  auto plan = MakeHashAggregate(
      MakeHashJoin(MakeTableSource(&lineitem_, "lineitem"), "key",
                   MakeTableSource(&part_, "part"), "key"),
      "r_v0", "l_v1", AggOp::kSum);
  Table out = plan->Execute();

  std::map<int64_t, int64_t> reference;
  for (size_t i = 0; i < lineitem_.num_rows(); ++i) {
    int64_t partkey = lineitem_.column(0).values[i];
    int64_t brand = part_.column(1).values[static_cast<size_t>(partkey)];
    reference[brand] += lineitem_.column(2).values[i];
  }
  ASSERT_EQ(out.num_rows(), reference.size());
  for (size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_EQ(out.column(1).values[i],
              reference[out.column(0).values[i]]);
  }
}

TEST_F(AnalyticSuiteTest, Q3TopPartsByVolume) {
  // SELECT partkey, count(*) FROM lineitem GROUP BY partkey
  // ORDER BY partkey LIMIT 5  (deterministic order column)
  auto plan = MakeLimit(
      MakeSort(MakeHashAggregate(MakeTableSource(&lineitem_), "key", "v0",
                                 AggOp::kCount),
               "key"),
      5);
  Table out = plan->Execute();
  ASSERT_EQ(out.num_rows(), 5u);
  std::map<int64_t, int64_t> reference;
  for (int64_t key : lineitem_.column(0).values) ++reference[key];
  auto it = reference.begin();
  for (size_t i = 0; i < 5; ++i, ++it) {
    EXPECT_EQ(out.column(0).values[i], it->first);
    EXPECT_EQ(out.column(1).values[i], it->second);
  }
}

TEST_F(AnalyticSuiteTest, Q4MinMaxExtremes) {
  // SELECT partkey, min(price), max(price) — two plans over one source.
  auto min_plan = MakeHashAggregate(MakeTableSource(&lineitem_), "key",
                                    "v1", AggOp::kMin);
  auto max_plan = MakeHashAggregate(MakeTableSource(&lineitem_), "key",
                                    "v1", AggOp::kMax);
  Table min_out = min_plan->Execute();
  Table max_out = max_plan->Execute();
  std::map<int64_t, std::pair<int64_t, int64_t>> reference;
  for (size_t i = 0; i < lineitem_.num_rows(); ++i) {
    int64_t key = lineitem_.column(0).values[i];
    int64_t price = lineitem_.column(2).values[i];
    auto [it, inserted] =
        reference.try_emplace(key, std::make_pair(price, price));
    if (!inserted) {
      it->second.first = std::min(it->second.first, price);
      it->second.second = std::max(it->second.second, price);
    }
  }
  for (size_t i = 0; i < min_out.num_rows(); ++i) {
    EXPECT_EQ(min_out.column(1).values[i],
              reference[min_out.column(0).values[i]].first);
  }
  for (size_t i = 0; i < max_out.num_rows(); ++i) {
    EXPECT_EQ(max_out.column(1).values[i],
              reference[max_out.column(0).values[i]].second);
  }
}

TEST_F(AnalyticSuiteTest, Q5SelectiveJoinWithProjection) {
  // SELECT l.price FROM lineitem l JOIN part p ON l.partkey = p.partkey
  // WHERE p.brand == 7 AND l.quantity > 900000
  auto plan = MakeProject(
      MakeFilter(
          MakeHashJoin(
              MakeFilter(MakeTableSource(&lineitem_, "lineitem"), "v0",
                         Predicate::kGreater, 900000),
              "key",
              MakeFilter(MakeTableSource(&part_, "part"), "v0",
                         Predicate::kEq, 7),
              "key"),
          "r_v0", Predicate::kEq, 7),
      {"l_v1"});
  Table out = plan->Execute();

  int64_t reference_count = 0;
  int64_t reference_sum = 0;
  for (size_t i = 0; i < lineitem_.num_rows(); ++i) {
    int64_t partkey = lineitem_.column(0).values[i];
    if (lineitem_.column(1).values[i] > 900000 &&
        part_.column(1).values[static_cast<size_t>(partkey)] == 7) {
      ++reference_count;
      reference_sum += lineitem_.column(2).values[i];
    }
  }
  EXPECT_EQ(static_cast<int64_t>(out.num_rows()), reference_count);
  int64_t sum = 0;
  for (int64_t price : out.column(0).values) sum += price;
  EXPECT_EQ(sum, reference_sum);
}

}  // namespace
}  // namespace hyperprof::relational
