#include "workloads/arena.h"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

namespace hyperprof::workloads {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (size_t alignment : {8u, 16u, 64u}) {
    for (int i = 0; i < 20; ++i) {
      void* p = arena.Allocate(3, alignment);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u);
    }
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(128);
  auto* a = static_cast<uint8_t*>(arena.Allocate(64));
  auto* b = static_cast<uint8_t*>(arena.Allocate(64));
  std::memset(a, 0xaa, 64);
  std::memset(b, 0xbb, 64);
  EXPECT_EQ(a[0], 0xaa);
  EXPECT_EQ(a[63], 0xaa);
  EXPECT_EQ(b[0], 0xbb);
}

TEST(ArenaTest, GrowsBeyondInitialBlock) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) arena.Allocate(60);
  EXPECT_GT(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 6000u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(64);
  void* p = arena.Allocate(10000);
  EXPECT_NE(p, nullptr);
  std::memset(p, 0, 10000);  // must be writable end to end
}

TEST(ArenaTest, ResetReclaimsAndKeepsLargestBlock) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) arena.Allocate(100);
  size_t blocks_before = arena.block_count();
  EXPECT_GT(blocks_before, 1u);
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Reusable after reset.
  void* p = arena.Allocate(32);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, ResetOnEmptyArenaIsNoop) {
  Arena arena;
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 0u);
}

TEST(StressTest, MallocStressIsDeterministic) {
  Rng a(42), b(42);
  EXPECT_EQ(MallocStress(2000, a), MallocStress(2000, b));
}

TEST(StressTest, ArenaStressIsDeterministic) {
  Rng a(42), b(42);
  EXPECT_EQ(ArenaStress(2000, a), ArenaStress(2000, b));
}

TEST(StressTest, StressRunsProduceWork) {
  Rng rng(1);
  // Smoke: completes without crashing and touches memory.
  MallocStress(5000, rng);
  ArenaStress(5000, rng);
}

}  // namespace
}  // namespace hyperprof::workloads
