#include "workloads/checksum.h"

#include <string>

#include <gtest/gtest.h>

namespace hyperprof::workloads {
namespace {

uint32_t Crc(const std::string& s, uint32_t seed = 0) {
  return Crc32c(reinterpret_cast<const uint8_t*>(s.data()), s.size(), seed);
}

// Standard CRC32C test vectors.
TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(Crc(""), 0x00000000u);
  EXPECT_EQ(Crc("a"), 0xc1d04330u);
  EXPECT_EQ(Crc("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, AllZeros32Bytes) {
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc(zeros), 0x8a9136aau);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc("foo"), Crc("bar"));
  EXPECT_NE(Crc("foo"), Crc("foo "));
}

TEST(Crc32cTest, SeedChaining) {
  // CRC of the whole equals CRC of the tail seeded with CRC of the head.
  std::string data = "hello, checksum world";
  uint32_t whole = Crc(data);
  uint32_t head = Crc(data.substr(0, 7));
  uint32_t chained = Crc(data.substr(7), head);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(64, 'q');
  uint32_t original = Crc(data);
  for (size_t i = 0; i < data.size(); i += 13) {
    std::string corrupted = data;
    corrupted[i] ^= 0x01;
    EXPECT_NE(Crc(corrupted), original) << "flip at " << i;
  }
}

}  // namespace
}  // namespace hyperprof::workloads
