#include "workloads/compression.h"

#include <string>

#include <gtest/gtest.h>

namespace hyperprof::workloads {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(LzCodecTest, EmptyInput) {
  auto compressed = LzCodec::Compress(std::vector<uint8_t>{});
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_TRUE(output.empty());
}

TEST(LzCodecTest, ShortLiteralRoundTrip) {
  auto input = Bytes("abc");
  auto compressed = LzCodec::Compress(input);
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, RepetitiveInputCompresses) {
  std::string s;
  for (int i = 0; i < 200; ++i) s += "the quick brown fox ";
  auto input = Bytes(s);
  auto compressed = LzCodec::Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, SingleByteRunRoundTrip) {
  std::vector<uint8_t> input(100000, 'z');
  auto compressed = LzCodec::Compress(input);
  EXPECT_LT(compressed.size(), 3000u);
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, IncompressibleInputRoundTrips) {
  Rng rng(3);
  std::vector<uint8_t> input(50000);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextBounded(256));
  auto compressed = LzCodec::Compress(input);
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, OverlappingCopyRoundTrip) {
  // "aaaa..." triggers copies whose source overlaps the destination —
  // the classic RLE-via-LZ case that byte-by-byte copying must handle.
  std::vector<uint8_t> input;
  for (int i = 0; i < 10; ++i) {
    input.insert(input.end(), 50, static_cast<uint8_t>('a' + i));
  }
  auto compressed = LzCodec::Compress(input);
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, RejectsTruncatedStream) {
  auto compressed = LzCodec::Compress(Bytes("hello hello hello hello"));
  compressed.pop_back();
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(compressed, &output));
}

TEST(LzCodecTest, RejectsCorruptedSizeHeader) {
  auto compressed = LzCodec::Compress(Bytes("hello world"));
  compressed[0] ^= 0x7f;  // corrupt uncompressed-size varint
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(compressed, &output));
}

TEST(LzCodecTest, RejectsCopyBeforeStart) {
  std::vector<uint8_t> stream;
  stream.push_back(1);  // uncompressed size claims 1
  // Short copy op with offset 1 into an empty output.
  stream.push_back(static_cast<uint8_t>(1 | (0 << 2)));
  stream.push_back(1);
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(stream, &output));
}

TEST(LzCodecTest, RejectsOverflowingSizeVarint) {
  // Five-byte varint whose 5th byte carries more than the 4 bits that fit
  // in uint32: the header parser must reject it instead of truncating.
  std::vector<uint8_t> stream = {0xff, 0xff, 0xff, 0xff, 0x10};
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(stream, &output));
}

TEST(LzCodecTest, RejectsSixByteSizeVarint) {
  std::vector<uint8_t> stream = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(stream, &output));
}

TEST(LzCodecTest, RejectsOverflowingLongLiteralLength) {
  // A long-literal op (tag 60<<2) whose length varint overflows uint32.
  std::vector<uint8_t> stream;
  stream.push_back(1);                  // uncompressed size claims 1
  stream.push_back(60 << 2);            // long-literal tag
  for (int i = 0; i < 4; ++i) stream.push_back(0xff);
  stream.push_back(0x10);               // 5th byte overflows
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(stream, &output));
}

TEST(LzCodecTest, MaxUint32SizeVarintParsesButFailsLengthCheck) {
  // 0xffffffff itself is a well-formed varint (5th byte 0x0f); the stream
  // is then rejected for not containing that many bytes, exercising the
  // boundary just below the overflow cutoff.
  std::vector<uint8_t> stream = {0xff, 0xff, 0xff, 0xff, 0x0f};
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(stream, &output));
}

TEST(LzCodecTest, RejectsEmptyStream) {
  std::vector<uint8_t> output;
  EXPECT_FALSE(LzCodec::Decompress(std::vector<uint8_t>{}, &output));
}

struct RoundTripCase {
  size_t size;
  double entropy;
};

class LzRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(LzRoundTripTest, GeneratedBuffers) {
  const RoundTripCase& param = GetParam();
  Rng rng(param.size * 31 + static_cast<uint64_t>(param.entropy * 100));
  auto input = GenerateCompressibleBuffer(param.size, param.entropy, rng);
  ASSERT_EQ(input.size(), param.size);
  auto compressed = LzCodec::Compress(input);
  std::vector<uint8_t> output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEntropies, LzRoundTripTest,
    ::testing::Values(RoundTripCase{1, 0.5}, RoundTripCase{64, 0.0},
                      RoundTripCase{64, 1.0}, RoundTripCase{4096, 0.2},
                      RoundTripCase{4096, 0.8}, RoundTripCase{65536, 0.0},
                      RoundTripCase{65536, 0.5}, RoundTripCase{65536, 1.0},
                      RoundTripCase{1 << 20, 0.3}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return "s" + std::to_string(info.param.size) + "_e" +
             std::to_string(static_cast<int>(info.param.entropy * 100));
    });

TEST(LzCodecTest, LowerEntropyCompressesBetter) {
  Rng rng(11);
  auto low = GenerateCompressibleBuffer(1 << 16, 0.1, rng);
  auto high = GenerateCompressibleBuffer(1 << 16, 0.9, rng);
  double low_ratio =
      static_cast<double>(LzCodec::Compress(low).size()) / low.size();
  double high_ratio =
      static_cast<double>(LzCodec::Compress(high).size()) / high.size();
  EXPECT_LT(low_ratio, high_ratio);
}

}  // namespace
}  // namespace hyperprof::workloads
