// Robustness ("fuzz-lite") tests: the decoders in the library parse
// untrusted bytes in production settings — random and mutated inputs must
// be rejected gracefully, never crash, and never read out of bounds.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workloads/compression.h"
#include "workloads/protowire/message.h"
#include "workloads/protowire/synthetic.h"

namespace hyperprof {
namespace {

TEST(FuzzTest, WireReaderSurvivesRandomBytes) {
  Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.NextBounded(64));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    protowire::WireReader reader(bytes.data(), bytes.size());
    // Drain with a random mix of getter calls; all must stay in bounds.
    while (!reader.AtEnd()) {
      size_t before = reader.position();
      bool progressed = false;
      switch (rng.NextBounded(5)) {
        case 0: {
          uint64_t v;
          progressed = reader.GetVarint(&v);
          break;
        }
        case 1: {
          uint32_t v;
          progressed = reader.GetFixed32(&v);
          break;
        }
        case 2: {
          uint64_t v;
          progressed = reader.GetFixed64(&v);
          break;
        }
        case 3: {
          const uint8_t* data;
          size_t size;
          progressed = reader.GetLengthDelimited(&data, &size);
          break;
        }
        case 4: {
          uint32_t number;
          protowire::WireType type;
          progressed = reader.GetTag(&number, &type);
          break;
        }
      }
      if (!progressed && reader.position() == before) break;
    }
  }
}

TEST(FuzzTest, MessageParseSurvivesRandomBytes) {
  Rng rng(102);
  protowire::SchemaPool pool;
  protowire::SyntheticSchemaParams params;
  const auto* descriptor = protowire::GenerateSchema(pool, params, rng);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.NextBounded(256));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    // Must either parse or return nullptr; never crash.
    auto message =
        protowire::Message::Parse(descriptor, bytes.data(), bytes.size());
    if (message != nullptr) {
      // Whatever parsed must re-serialize without issue.
      auto wire = message->Serialize();
      EXPECT_EQ(wire.size(), message->ByteSize());
    }
  }
}

TEST(FuzzTest, MessageParseSurvivesBitFlips) {
  Rng rng(103);
  protowire::SchemaPool pool;
  protowire::SyntheticSchemaParams params;
  const auto* descriptor = protowire::GenerateSchema(pool, params, rng);
  auto message = protowire::GenerateMessage(descriptor, params, rng);
  auto wire = message->Serialize();
  ASSERT_FALSE(wire.empty());
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = wire;
    // Flip 1-4 random bits.
    int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      size_t index = rng.NextBounded(mutated.size());
      mutated[index] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    auto parsed = protowire::Message::Parse(descriptor, mutated.data(),
                                            mutated.size());
    if (parsed != nullptr) {
      auto reserialized = parsed->Serialize();
      EXPECT_EQ(reserialized.size(), parsed->ByteSize());
    }
  }
}

TEST(FuzzTest, DecompressSurvivesRandomBytes) {
  Rng rng(104);
  std::vector<uint8_t> output;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.NextBounded(512));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    // Either decodes (tiny chance) or reports failure; never crashes.
    workloads::LzCodec::Decompress(bytes.data(), bytes.size(), &output);
  }
}

TEST(FuzzTest, DecompressSurvivesTruncationsOfValidStream) {
  Rng rng(105);
  auto input = workloads::GenerateCompressibleBuffer(8192, 0.3, rng);
  auto compressed = workloads::LzCodec::Compress(input);
  std::vector<uint8_t> output;
  for (size_t cut = 0; cut < compressed.size(); cut += 7) {
    workloads::LzCodec::Decompress(compressed.data(), cut, &output);
  }
}

TEST(FuzzTest, DecompressSurvivesBitFlipsOfValidStream) {
  Rng rng(106);
  auto input = workloads::GenerateCompressibleBuffer(4096, 0.3, rng);
  auto compressed = workloads::LzCodec::Compress(input);
  std::vector<uint8_t> output;
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = compressed;
    size_t index = rng.NextBounded(mutated.size());
    mutated[index] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    // May succeed with different bytes or fail; must not crash. When it
    // "succeeds", the declared size must have been honored.
    if (workloads::LzCodec::Decompress(mutated.data(), mutated.size(),
                                       &output)) {
      // Header size varint was honored by construction.
      SUCCEED();
    }
  }
}

}  // namespace
}  // namespace hyperprof
