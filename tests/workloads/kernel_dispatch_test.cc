// Cross-path bit-identity and streaming==one-shot tests for the
// datacenter-tax kernels behind the runtime dispatch layer (common/cpu.h).
// Every test that touches a dispatched kernel runs under BOTH policies:
// the contract is that HYPERPROF_KERNEL_DISPATCH can change wall-clock
// only, never a single output bit.

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu.h"
#include "common/rng.h"
#include "workloads/checksum.h"
#include "workloads/compression.h"
#include "workloads/protowire/wire.h"
#include "workloads/sha3.h"

namespace hyperprof::workloads {
namespace {

// Restores environment-based dispatch resolution when a test exits.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(KernelDispatch dispatch) {
    SetKernelDispatchForTest(dispatch);
  }
  ~ScopedDispatch() { SetKernelDispatchForTest(std::nullopt); }
};

constexpr KernelDispatch kBothModes[] = {KernelDispatch::kPortable,
                                         KernelDispatch::kNative};

// Bit-at-a-time CRC32C: the slowest possible implementation, used as the
// ground truth both table and hardware paths must match.
uint32_t ReferenceCrc32c(const uint8_t* data, size_t size, uint32_t seed) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
  }
  return ~crc;
}

std::vector<uint8_t> RandomBuffer(size_t size, Rng& rng) {
  std::vector<uint8_t> buffer(size);
  for (auto& b : buffer) b = static_cast<uint8_t>(rng.NextBounded(256));
  return buffer;
}

TEST(CpuDispatchTest, DetectionIsStable) {
  const CpuFeatures& first = HostCpuFeatures();
  const CpuFeatures& second = HostCpuFeatures();
  EXPECT_EQ(&first, &second);
#if defined(__x86_64__)
  // The hardware CRC path rides on SSE4.2; pclmul/avx2 imply it in
  // practice on every x86-64 that has them.
  if (first.avx2) EXPECT_TRUE(first.sse42);
#endif
}

TEST(CpuDispatchTest, OverrideWinsOverEnvironment) {
  {
    ScopedDispatch pin(KernelDispatch::kPortable);
    EXPECT_EQ(ActiveKernelDispatch(), KernelDispatch::kPortable);
    EXPECT_FALSE(UseHardwareCrc32());
  }
  {
    ScopedDispatch pin(KernelDispatch::kNative);
    EXPECT_EQ(ActiveKernelDispatch(), KernelDispatch::kNative);
  }
}

TEST(CpuDispatchTest, SummaryNamesActivePolicy) {
  ScopedDispatch pin(KernelDispatch::kPortable);
  EXPECT_EQ(KernelDispatchSummary().rfind("portable (", 0), 0u);
}

TEST(CrcDispatchTest, BothPathsMatchBitwiseReference) {
  Rng rng(101);
  for (size_t size : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{8},
                      size_t{9}, size_t{15}, size_t{16}, size_t{63},
                      size_t{64}, size_t{255}, size_t{1024}, size_t{4097}}) {
    auto buffer = RandomBuffer(size, rng);
    uint32_t seed = static_cast<uint32_t>(rng.Next());
    uint32_t expected = ReferenceCrc32c(buffer.data(), size, seed);
    for (KernelDispatch mode : kBothModes) {
      ScopedDispatch pin(mode);
      EXPECT_EQ(Crc32c(buffer.data(), size, seed), expected)
          << "size=" << size << " mode=" << KernelDispatchName(mode);
    }
  }
}

TEST(CrcDispatchTest, UnalignedBuffersMatch) {
  Rng rng(102);
  auto backing = RandomBuffer(512, rng);
  for (size_t offset = 0; offset < 9; ++offset) {
    size_t size = backing.size() - offset - 7;
    uint32_t expected =
        ReferenceCrc32c(backing.data() + offset, size, 0);
    for (KernelDispatch mode : kBothModes) {
      ScopedDispatch pin(mode);
      EXPECT_EQ(Crc32c(backing.data() + offset, size), expected)
          << "offset=" << offset << " mode=" << KernelDispatchName(mode);
    }
  }
}

TEST(CrcDispatchTest, StreamingEqualsOneShotAcrossRandomSplits) {
  Rng rng(103);
  auto buffer = RandomBuffer(8192, rng);
  for (KernelDispatch mode : kBothModes) {
    ScopedDispatch pin(mode);
    uint32_t one_shot = Crc32c(buffer);
    for (int trial = 0; trial < 32; ++trial) {
      Crc32cStream stream;
      size_t pos = 0;
      while (pos < buffer.size()) {
        size_t chunk =
            std::min(buffer.size() - pos, rng.NextBounded(300));
        stream.Update(buffer.data() + pos, chunk);
        pos += chunk;
      }
      EXPECT_EQ(stream.value(), one_shot)
          << "trial=" << trial << " mode=" << KernelDispatchName(mode);
    }
  }
}

TEST(CrcDispatchTest, StreamEmptyUpdatesAndReset) {
  for (KernelDispatch mode : kBothModes) {
    ScopedDispatch pin(mode);
    Crc32cStream stream;
    EXPECT_EQ(stream.value(), Crc32c(nullptr, 0));
    stream.Update(nullptr, 0);
    EXPECT_EQ(stream.value(), Crc32c(nullptr, 0));
    const uint8_t kByte = 0x42;
    stream.Update(&kByte, 1);
    uint32_t with_byte = stream.value();
    EXPECT_EQ(with_byte, Crc32c(&kByte, 1));
    // value() is a running checksum: reading it must not finalize.
    stream.Update(&kByte, 1);
    const uint8_t two[] = {0x42, 0x42};
    EXPECT_EQ(stream.value(), Crc32c(two, 2));
    stream.Reset();
    stream.Update(&kByte, 1);
    EXPECT_EQ(stream.value(), with_byte);
  }
}

TEST(CrcDispatchTest, SeedChainsAcrossDispatchModes) {
  // A checksum started under one policy must be resumable under the other:
  // storage code may checksum a block on a different machine than the one
  // that verifies it.
  Rng rng(104);
  auto buffer = RandomBuffer(1000, rng);
  uint32_t whole = ReferenceCrc32c(buffer.data(), buffer.size(), 0);
  uint32_t head;
  {
    ScopedDispatch pin(KernelDispatch::kNative);
    head = Crc32c(buffer.data(), 333);
  }
  {
    ScopedDispatch pin(KernelDispatch::kPortable);
    EXPECT_EQ(Crc32c(buffer.data() + 333, buffer.size() - 333, head), whole);
  }
}

TEST(Sha3DispatchTest, StreamingEqualsOneShotAcrossRandomSplits) {
  Rng rng(105);
  auto buffer = RandomBuffer(10000, rng);
  for (KernelDispatch mode : kBothModes) {
    ScopedDispatch pin(mode);
    auto one_shot = Sha3_256::Hash(buffer);
    for (int trial = 0; trial < 16; ++trial) {
      Sha3_256 hasher;
      size_t pos = 0;
      while (pos < buffer.size()) {
        // Mix sub-rate, exactly-rate, and multi-block chunks.
        size_t chunk = std::min(buffer.size() - pos,
                                rng.NextBounded(3 * Sha3_256::kRateBytes));
        hasher.Update(buffer.data() + pos, chunk);
        pos += chunk;
      }
      EXPECT_EQ(hasher.Finish(), one_shot)
          << "trial=" << trial << " mode=" << KernelDispatchName(mode);
    }
  }
}

TEST(Sha3DispatchTest, EmptyAndUnalignedInputs) {
  Rng rng(106);
  auto backing = RandomBuffer(700, rng);
  for (KernelDispatch mode : kBothModes) {
    ScopedDispatch pin(mode);
    // Empty message digest is pinned by sha3_test goldens; here just check
    // chunked-empty consistency.
    Sha3_256 empty_hasher;
    empty_hasher.Update(nullptr, 0);
    EXPECT_EQ(empty_hasher.Finish(), Sha3_256::Hash(nullptr, 0));
    for (size_t offset = 1; offset < 8; ++offset) {
      auto direct = Sha3_256::Hash(backing.data() + offset, 600);
      Sha3_256 hasher;
      hasher.Update(backing.data() + offset, 600);
      EXPECT_EQ(hasher.Finish(), direct) << "offset=" << offset;
    }
  }
}

TEST(VarintDispatchTest, EncodeMatchesNaiveReferenceEverywhere) {
  // The SWAR encoder must emit byte-for-byte what the schoolbook encoder
  // emits, for boundary values of every length and random fills.
  Rng rng(107);
  std::vector<uint64_t> values = {0, 1, 0x7f, 0x80, 0x3fff, 0x4000};
  for (int bits = 1; bits < 64; ++bits) {
    values.push_back((1ull << bits) - 1);
    values.push_back(1ull << bits);
    values.push_back((1ull << bits) | (rng.Next() & ((1ull << bits) - 1)));
  }
  values.push_back(~0ull);
  for (KernelDispatch mode : kBothModes) {
    ScopedDispatch pin(mode);
    for (uint64_t value : values) {
      protowire::WireBuffer expected;
      uint64_t v = value;
      while (v >= 0x80) {
        expected.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
      }
      expected.push_back(static_cast<uint8_t>(v));
      protowire::WireBuffer got;
      protowire::PutVarint(got, value);
      EXPECT_EQ(got, expected) << "value=" << value;
      protowire::WireReader reader(got);
      uint64_t decoded;
      ASSERT_TRUE(reader.GetVarint(&decoded));
      EXPECT_EQ(decoded, value);
    }
  }
}

TEST(VarintDispatchTest, DecodeFastAndTailPathsAgree) {
  // The same varint is decoded once with 8+ readable bytes (word-at-a-time
  // path) and once flush against the buffer end (tail path).
  Rng rng(108);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t value = rng.Next() >> rng.NextBounded(64);
    protowire::WireBuffer exact;
    protowire::PutVarint(exact, value);
    protowire::WireBuffer padded = exact;
    padded.resize(exact.size() + 16, 0xff);
    uint64_t from_padded, from_exact;
    protowire::WireReader padded_reader(padded);
    protowire::WireReader exact_reader(exact);
    ASSERT_TRUE(padded_reader.GetVarint(&from_padded));
    ASSERT_TRUE(exact_reader.GetVarint(&from_exact));
    EXPECT_EQ(from_padded, value);
    EXPECT_EQ(from_exact, value);
    EXPECT_EQ(padded_reader.position(), exact.size());
    EXPECT_TRUE(exact_reader.AtEnd());
  }
}

TEST(CompressionDispatchTest, OutputIdenticalAcrossModes) {
  // The LZ kernel's optimizations (word-wide match extension, skip-ahead)
  // are dispatch-neutral: both policies must produce the same bytes.
  Rng rng(109);
  for (double entropy : {0.0, 0.3, 0.7, 1.0}) {
    Rng gen(static_cast<uint64_t>(entropy * 1000) + 7);
    auto input = GenerateCompressibleBuffer(1 << 16, entropy, gen);
    std::vector<uint8_t> portable_out, native_out;
    {
      ScopedDispatch pin(KernelDispatch::kPortable);
      portable_out = LzCodec::Compress(input);
    }
    {
      ScopedDispatch pin(KernelDispatch::kNative);
      native_out = LzCodec::Compress(input);
    }
    EXPECT_EQ(portable_out, native_out) << "entropy=" << entropy;
    std::vector<uint8_t> round_trip;
    ASSERT_TRUE(LzCodec::Decompress(portable_out, &round_trip));
    EXPECT_EQ(round_trip, input);
  }
  (void)rng;
}

TEST(CompressionDispatchTest, MatchExtensionBoundaries) {
  // Runs whose match length lands on every offset around the 8-byte word
  // boundaries of the new extension loop.
  for (size_t run = 4; run < 40; ++run) {
    std::vector<uint8_t> input;
    for (int rep = 0; rep < 3; ++rep) {
      for (size_t i = 0; i < run; ++i) {
        input.push_back(static_cast<uint8_t>('a' + (i % 23)));
      }
      input.push_back(static_cast<uint8_t>(0xf0 + rep));  // break the run
    }
    auto compressed = LzCodec::Compress(input);
    std::vector<uint8_t> output;
    ASSERT_TRUE(LzCodec::Decompress(compressed, &output)) << "run=" << run;
    EXPECT_EQ(output, input) << "run=" << run;
  }
}

}  // namespace
}  // namespace hyperprof::workloads
