#include "workloads/protowire/message.h"

#include <gtest/gtest.h>

namespace hyperprof::protowire {
namespace {

/** A pool with a nested schema used across tests. */
class MessageTest : public ::testing::Test {
 protected:
  MessageTest() {
    inner_ = pool_.Add("Inner");
    inner_->fields.push_back({1, FieldType::kInt64, false, "id", nullptr});
    inner_->fields.push_back(
        {2, FieldType::kString, false, "name", nullptr});

    outer_ = pool_.Add("Outer");
    outer_->fields.push_back({1, FieldType::kInt64, false, "seq", nullptr});
    outer_->fields.push_back(
        {2, FieldType::kSint64, false, "delta", nullptr});
    outer_->fields.push_back({3, FieldType::kBool, false, "flag", nullptr});
    outer_->fields.push_back(
        {4, FieldType::kDouble, false, "score", nullptr});
    outer_->fields.push_back({5, FieldType::kFloat, false, "ratio", nullptr});
    outer_->fields.push_back(
        {6, FieldType::kString, true, "tags", nullptr});
    outer_->fields.push_back(
        {7, FieldType::kMessage, true, "items", inner_});
  }

  std::unique_ptr<Message> MakeSample() {
    auto message = std::make_unique<Message>(outer_);
    message->AddInt64(1, 42);
    message->AddInt64(2, -17);
    message->AddBool(3, true);
    message->AddDouble(4, 3.25);
    message->AddFloat(5, 0.5f);
    message->AddString(6, "alpha");
    message->AddString(6, "beta");
    auto item = std::make_unique<Message>(inner_);
    item->AddInt64(1, 7);
    item->AddString(2, "seven");
    message->AddMessage(7, std::move(item));
    return message;
  }

  SchemaPool pool_;
  Descriptor* inner_;
  Descriptor* outer_;
};

TEST_F(MessageTest, ByteSizeMatchesSerializedSize) {
  auto message = MakeSample();
  WireBuffer wire = message->Serialize();
  EXPECT_EQ(wire.size(), message->ByteSize());
}

TEST_F(MessageTest, RoundTripPreservesAllFields) {
  auto message = MakeSample();
  WireBuffer wire = message->Serialize();
  auto parsed = Message::Parse(outer_, wire.data(), wire.size());
  ASSERT_NE(parsed, nullptr);
  EXPECT_TRUE(parsed->Equals(*message));
}

TEST_F(MessageTest, RepeatedFieldsAccumulate) {
  Message message(outer_);
  message.AddString(6, "a");
  message.AddString(6, "b");
  message.AddString(6, "c");
  EXPECT_EQ(message.FieldCount(6), 3u);
}

TEST_F(MessageTest, ScalarFieldOverwrites) {
  Message message(outer_);
  message.AddInt64(1, 1);
  message.AddInt64(1, 2);
  EXPECT_EQ(message.FieldCount(1), 1u);
  EXPECT_EQ(std::get<int64_t>(message.ValuesOf(1)[0]), 2);
}

TEST_F(MessageTest, UnknownFieldsAreSkipped) {
  // Serialize with the full schema, parse with a narrower one.
  auto message = MakeSample();
  WireBuffer wire = message->Serialize();
  Descriptor* narrow = pool_.Add("Narrow");
  narrow->fields.push_back({1, FieldType::kInt64, false, "seq", nullptr});
  auto parsed = Message::Parse(narrow, wire.data(), wire.size());
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->FieldCount(1), 1u);
  EXPECT_EQ(std::get<int64_t>(parsed->ValuesOf(1)[0]), 42);
}

TEST_F(MessageTest, WireTypeMismatchFailsParse) {
  WireBuffer wire;
  PutTag(wire, 1, WireType::kFixed32);  // field 1 is int64 (varint)
  PutFixed32(wire, 5);
  EXPECT_EQ(Message::Parse(outer_, wire.data(), wire.size()), nullptr);
}

TEST_F(MessageTest, TruncatedNestedMessageFailsParse) {
  auto message = MakeSample();
  WireBuffer wire = message->Serialize();
  wire.pop_back();  // truncate the trailing nested message
  EXPECT_EQ(Message::Parse(outer_, wire.data(), wire.size()), nullptr);
}

TEST_F(MessageTest, EmptyMessageRoundTrips) {
  Message message(outer_);
  WireBuffer wire = message.Serialize();
  EXPECT_TRUE(wire.empty());
  auto parsed = Message::Parse(outer_, wire.data(), wire.size());
  ASSERT_NE(parsed, nullptr);
  EXPECT_TRUE(parsed->Equals(message));
}

TEST_F(MessageTest, EqualsDetectsValueDifference) {
  auto a = MakeSample();
  auto b = MakeSample();
  EXPECT_TRUE(a->Equals(*b));
  b->AddInt64(1, 43);
  EXPECT_FALSE(a->Equals(*b));
}

TEST_F(MessageTest, EqualsDetectsNestedDifference) {
  auto a = MakeSample();
  auto b = MakeSample();
  auto extra = std::make_unique<Message>(inner_);
  extra->AddInt64(1, 99);
  b->AddMessage(7, std::move(extra));
  EXPECT_FALSE(a->Equals(*b));
}

TEST_F(MessageTest, DeepValueCountIncludesNested) {
  auto message = MakeSample();
  // 7 top-level values + nested message's 2 values.
  EXPECT_EQ(message->DeepValueCount(), 10u);
}

TEST_F(MessageTest, NegativeInt64UsesTenByteVarint) {
  Message message(outer_);
  message.AddInt64(1, -1);
  WireBuffer wire = message.Serialize();
  auto parsed = Message::Parse(outer_, wire.data(), wire.size());
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(std::get<int64_t>(parsed->ValuesOf(1)[0]), -1);
}

TEST_F(MessageTest, SintFieldUsesCompactNegatives) {
  Message a(outer_);
  a.AddInt64(1, -1);  // plain int64: 10-byte varint
  Message b(outer_);
  b.AddInt64(2, -1);  // sint64: zigzag -> 1 byte
  EXPECT_GT(a.ByteSize(), b.ByteSize());
}

TEST_F(MessageTest, DescriptorFindField) {
  EXPECT_NE(outer_->FindField(1), nullptr);
  EXPECT_EQ(outer_->FindField(99), nullptr);
  EXPECT_EQ(outer_->FindField(7)->message_type, inner_);
}

}  // namespace
}  // namespace hyperprof::protowire
