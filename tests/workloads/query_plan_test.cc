#include "workloads/query_plan.h"

#include <map>

#include <gtest/gtest.h>

namespace hyperprof::relational {
namespace {

Table Orders() {
  std::vector<Column> columns;
  columns.push_back(Column{"customer", {1, 2, 1, 3, 2, 1}});
  columns.push_back(Column{"amount", {10, 20, 30, 40, 50, 60}});
  return Table(std::move(columns));
}

Table Customers() {
  std::vector<Column> columns;
  columns.push_back(Column{"id", {1, 2, 3}});
  columns.push_back(Column{"region", {7, 8, 9}});
  return Table(std::move(columns));
}

TEST(QueryPlanTest, TableSourceCopiesInput) {
  Table orders = Orders();
  auto plan = MakeTableSource(&orders, "orders");
  Table out = plan->Execute();
  EXPECT_EQ(out.num_rows(), 6u);
  EXPECT_EQ(out.num_columns(), 2u);
}

TEST(QueryPlanTest, FilterThenProject) {
  Table orders = Orders();
  auto plan = MakeProject(
      MakeFilter(MakeTableSource(&orders), "amount", Predicate::kGreater,
                 25),
      {"customer"});
  Table out = plan->Execute();
  EXPECT_EQ(out.num_columns(), 1u);
  EXPECT_EQ(out.column(0).values, (std::vector<int64_t>{1, 3, 2, 1}));
}

TEST(QueryPlanTest, AggregateMatchesDirectKernelCall) {
  Table orders = Orders();
  auto plan = MakeHashAggregate(MakeTableSource(&orders), "customer",
                                "amount", AggOp::kSum);
  Table out = plan->Execute();
  std::map<int64_t, int64_t> result;
  for (size_t i = 0; i < out.num_rows(); ++i) {
    result[out.column(0).values[i]] = out.column(1).values[i];
  }
  EXPECT_EQ(result[1], 100);
  EXPECT_EQ(result[2], 70);
  EXPECT_EQ(result[3], 40);
}

TEST(QueryPlanTest, HashAndSortAggregatePlansAgree) {
  Rng rng(3);
  Table table = GenerateTable(2000, 1, 17, rng);
  auto hash_plan = MakeHashAggregate(MakeTableSource(&table), "key", "v0",
                                     AggOp::kSum);
  auto sort_plan = MakeSortAggregate(MakeTableSource(&table), "key", "v0",
                                     AggOp::kSum);
  Table hash_out = hash_plan->Execute();
  Table sort_out = sort_plan->Execute();
  std::map<int64_t, int64_t> hash_map, sort_map;
  for (size_t i = 0; i < hash_out.num_rows(); ++i) {
    hash_map[hash_out.column(0).values[i]] = hash_out.column(1).values[i];
  }
  for (size_t i = 0; i < sort_out.num_rows(); ++i) {
    sort_map[sort_out.column(0).values[i]] = sort_out.column(1).values[i];
  }
  EXPECT_EQ(hash_map, sort_map);
}

TEST(QueryPlanTest, JoinFilterAggregatePipeline) {
  // SELECT c.region, sum(o.amount) FROM orders o JOIN customers c
  // ON o.customer = c.id WHERE o.amount >= 30 GROUP BY c.region
  Table orders = Orders();
  Table customers = Customers();
  auto plan = MakeHashAggregate(
      MakeHashJoin(MakeFilter(MakeTableSource(&orders, "orders"), "amount",
                              Predicate::kGreaterEq, 30),
                   "customer", MakeTableSource(&customers, "customers"),
                   "id"),
      "r_region", "l_amount", AggOp::kSum);
  Table out = plan->Execute();
  std::map<int64_t, int64_t> by_region;
  for (size_t i = 0; i < out.num_rows(); ++i) {
    by_region[out.column(0).values[i]] = out.column(1).values[i];
  }
  // amounts >= 30: (1,30), (3,40), (2,50), (1,60)
  EXPECT_EQ(by_region[7], 90);  // customer 1 -> region 7
  EXPECT_EQ(by_region[8], 50);  // customer 2 -> region 8
  EXPECT_EQ(by_region[9], 40);  // customer 3 -> region 9
}

TEST(QueryPlanTest, SortAndLimitTopN) {
  Table orders = Orders();
  auto plan =
      MakeLimit(MakeSort(MakeTableSource(&orders), "amount"), 2);
  Table out = plan->Execute();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column(1).values, (std::vector<int64_t>{10, 20}));
}

TEST(QueryPlanTest, LimitBeyondSizeKeepsAll) {
  Table orders = Orders();
  auto plan = MakeLimit(MakeTableSource(&orders), 100);
  EXPECT_EQ(plan->Execute().num_rows(), 6u);
}

TEST(QueryPlanTest, DescribeTreeShowsStructure) {
  Table orders = Orders();
  auto plan = MakeHashAggregate(
      MakeFilter(MakeTableSource(&orders, "orders"), "amount",
                 Predicate::kLess, 100),
      "customer", "amount", AggOp::kCount);
  std::string tree = plan->DescribeTree();
  EXPECT_NE(tree.find("HashAggregate(count(amount) by customer)"),
            std::string::npos);
  EXPECT_NE(tree.find("Filter(amount < 100)"), std::string::npos);
  EXPECT_NE(tree.find("TableSource(orders"), std::string::npos);
}

}  // namespace
}  // namespace hyperprof::relational
