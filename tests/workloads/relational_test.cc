#include "workloads/relational.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

namespace hyperprof::relational {
namespace {

Table MakeTable(std::vector<int64_t> keys, std::vector<int64_t> values) {
  std::vector<Column> columns;
  columns.push_back(Column{"key", std::move(keys)});
  columns.push_back(Column{"value", std::move(values)});
  return Table(std::move(columns));
}

TEST(FilterTest, AllPredicates) {
  Column column{"c", {1, 5, 3, 5, 7}};
  EXPECT_EQ(Filter(column, Predicate::kLess, 5),
            (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(Filter(column, Predicate::kLessEq, 5),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(Filter(column, Predicate::kEq, 5),
            (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(Filter(column, Predicate::kNotEq, 5),
            (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(Filter(column, Predicate::kGreaterEq, 5),
            (std::vector<uint32_t>{1, 3, 4}));
  EXPECT_EQ(Filter(column, Predicate::kGreater, 5),
            (std::vector<uint32_t>{4}));
}

TEST(FilterTest, EmptyColumn) {
  Column column{"c", {}};
  EXPECT_TRUE(Filter(column, Predicate::kEq, 1).empty());
}

TEST(MaterializeTest, GathersSelectedRows) {
  Table table = MakeTable({1, 2, 3, 4}, {10, 20, 30, 40});
  Table out = Materialize(table, {1, 3}, {0, 1});
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column(0).values, (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(out.column(1).values, (std::vector<int64_t>{20, 40}));
}

TEST(ProjectTest, CopiesChosenColumns) {
  Table table = MakeTable({1, 2}, {10, 20});
  Table out = Project(table, {1});
  EXPECT_EQ(out.num_columns(), 1u);
  EXPECT_EQ(out.column(0).name, "value");
  EXPECT_EQ(out.column(0).values, (std::vector<int64_t>{10, 20}));
}

TEST(AggregateTest, HashSumGroups) {
  Table table = MakeTable({1, 2, 1, 2, 3}, {10, 20, 30, 40, 50});
  Table out = HashAggregate(table, 0, 1, AggOp::kSum);
  ASSERT_EQ(out.num_rows(), 3u);
  std::map<int64_t, int64_t> result;
  for (size_t i = 0; i < out.num_rows(); ++i) {
    result[out.column(0).values[i]] = out.column(1).values[i];
  }
  EXPECT_EQ(result[1], 40);
  EXPECT_EQ(result[2], 60);
  EXPECT_EQ(result[3], 50);
}

TEST(AggregateTest, CountMinMax) {
  Table table = MakeTable({1, 1, 1}, {5, -2, 9});
  EXPECT_EQ(HashAggregate(table, 0, 1, AggOp::kCount).column(1).values[0], 3);
  EXPECT_EQ(HashAggregate(table, 0, 1, AggOp::kMin).column(1).values[0], -2);
  EXPECT_EQ(HashAggregate(table, 0, 1, AggOp::kMax).column(1).values[0], 9);
}

TEST(AggregateTest, HashAndSortAgree) {
  Rng rng(3);
  Table table = GenerateTable(5000, 1, 40, rng);
  for (AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax}) {
    Table hash_result = HashAggregate(table, 0, 1, op);
    Table sort_result = SortAggregate(table, 0, 1, op);
    ASSERT_EQ(hash_result.num_rows(), sort_result.num_rows());
    std::map<int64_t, int64_t> hash_map, sort_map;
    for (size_t i = 0; i < hash_result.num_rows(); ++i) {
      hash_map[hash_result.column(0).values[i]] =
          hash_result.column(1).values[i];
    }
    for (size_t i = 0; i < sort_result.num_rows(); ++i) {
      sort_map[sort_result.column(0).values[i]] =
          sort_result.column(1).values[i];
    }
    EXPECT_EQ(hash_map, sort_map);
  }
}

TEST(AggregateTest, SortAggregateOutputIsKeyOrdered) {
  Rng rng(5);
  Table table = GenerateTable(1000, 1, 20, rng);
  Table out = SortAggregate(table, 0, 1, AggOp::kSum);
  EXPECT_TRUE(std::is_sorted(out.column(0).values.begin(),
                             out.column(0).values.end()));
}

TEST(HashJoinTest, MatchesNestedLoopReference) {
  Rng rng(7);
  Table left = MakeTable({1, 2, 3, 2}, {10, 20, 30, 21});
  Table right = MakeTable({2, 2, 4, 1}, {100, 200, 300, 400});
  Table joined = HashJoin(left, 0, right, 0);

  // Reference nested-loop join.
  std::multiset<std::tuple<int64_t, int64_t, int64_t, int64_t>> expected,
      actual;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (left.column(0).values[l] == right.column(0).values[r]) {
        expected.insert({left.column(0).values[l], left.column(1).values[l],
                         right.column(0).values[r],
                         right.column(1).values[r]});
      }
    }
  }
  for (size_t i = 0; i < joined.num_rows(); ++i) {
    actual.insert(
        {joined.column(0).values[i], joined.column(1).values[i],
         joined.column(2).values[i], joined.column(3).values[i]});
  }
  EXPECT_EQ(expected, actual);
  EXPECT_EQ(joined.num_rows(), 5u);  // key 1 x1, key 2: 2x2 = 4
}

TEST(HashJoinTest, NoMatchesYieldsEmpty) {
  Table left = MakeTable({1}, {10});
  Table right = MakeTable({2}, {20});
  Table joined = HashJoin(left, 0, right, 0);
  EXPECT_EQ(joined.num_rows(), 0u);
  EXPECT_EQ(joined.num_columns(), 4u);
}

TEST(HashJoinTest, ColumnNamesArePrefixed) {
  Table left = MakeTable({1}, {10});
  Table right = MakeTable({1}, {20});
  Table joined = HashJoin(left, 0, right, 0);
  EXPECT_EQ(joined.column(0).name, "l_key");
  EXPECT_EQ(joined.column(3).name, "r_value");
}

TEST(SortTest, SortsAllColumnsByKey) {
  Table table = MakeTable({3, 1, 2}, {30, 10, 20});
  SortByColumn(table, 0);
  EXPECT_EQ(table.column(0).values, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(table.column(1).values, (std::vector<int64_t>{10, 20, 30}));
}

TEST(SortTest, StableOnTies) {
  std::vector<Column> columns;
  columns.push_back(Column{"key", {1, 1, 1}});
  columns.push_back(Column{"order", {0, 1, 2}});
  Table table(std::move(columns));
  SortByColumn(table, 0);
  EXPECT_EQ(table.column(1).values, (std::vector<int64_t>{0, 1, 2}));
}

TEST(GenerateTableTest, ShapeAndCardinality) {
  Rng rng(9);
  Table table = GenerateTable(10000, 3, 50, rng);
  EXPECT_EQ(table.num_rows(), 10000u);
  EXPECT_EQ(table.num_columns(), 4u);
  for (int64_t key : table.column(0).values) {
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 50);
  }
  // Zipf-ish: rank 0 appears more often than rank 40.
  int rank0 = 0, rank40 = 0;
  for (int64_t key : table.column(0).values) {
    if (key == 0) ++rank0;
    if (key == 40) ++rank40;
  }
  EXPECT_GT(rank0, rank40);
}

TEST(TableTest, FindColumnByName) {
  Table table = MakeTable({1}, {2});
  EXPECT_EQ(table.FindColumn("key"), 0);
  EXPECT_EQ(table.FindColumn("value"), 1);
  EXPECT_EQ(table.FindColumn("missing"), -1);
}

}  // namespace
}  // namespace hyperprof::relational
