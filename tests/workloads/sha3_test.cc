#include "workloads/sha3.h"

#include <string>

#include <gtest/gtest.h>

namespace hyperprof::workloads {
namespace {

std::string HashHex(const std::string& input) {
  return DigestToHex(Sha3_256::Hash(
      reinterpret_cast<const uint8_t*>(input.data()), input.size()));
}

// FIPS 202 / NIST test vectors.
TEST(Sha3Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3Test, LongStandardVector) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376");
}

TEST(Sha3Test, ExactlyOneRateBlock) {
  // 136 bytes = exactly the rate; exercises the block boundary + padding
  // into a fresh block.
  std::string input(Sha3_256::kRateBytes, 'a');
  std::string once = HashHex(input);
  // Compare against incremental absorption split across the boundary.
  Sha3_256 hasher;
  hasher.Update(reinterpret_cast<const uint8_t*>(input.data()), 100);
  hasher.Update(reinterpret_cast<const uint8_t*>(input.data()) + 100, 36);
  EXPECT_EQ(DigestToHex(hasher.Finish()), once);
}

TEST(Sha3Test, IncrementalEqualsOneShot) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += static_cast<char>('a' + i % 26);
  std::string expected = HashHex(input);
  for (size_t chunk : {1u, 7u, 64u, 135u, 137u, 999u}) {
    Sha3_256 hasher;
    size_t pos = 0;
    while (pos < input.size()) {
      size_t take = std::min(chunk, input.size() - pos);
      hasher.Update(reinterpret_cast<const uint8_t*>(input.data()) + pos,
                    take);
      pos += take;
    }
    EXPECT_EQ(DigestToHex(hasher.Finish()), expected)
        << "chunk size " << chunk;
  }
}

TEST(Sha3Test, DifferentInputsDiffer) {
  EXPECT_NE(HashHex("a"), HashHex("b"));
  EXPECT_NE(HashHex("message"), HashHex("message "));
}

TEST(Sha3Test, LengthSweepIsStable) {
  // Every length in [0, 300) hashes without error and deterministically.
  for (size_t len = 0; len < 300; ++len) {
    std::string input(len, 'x');
    EXPECT_EQ(HashHex(input), HashHex(input));
  }
}

TEST(Sha3Test, DigestToHexFormat) {
  std::array<uint8_t, Sha3_256::kDigestBytes> digest{};
  digest[0] = 0xab;
  digest[31] = 0x01;
  std::string hex = DigestToHex(digest);
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.substr(0, 2), "ab");
  EXPECT_EQ(hex.substr(62, 2), "01");
}

}  // namespace
}  // namespace hyperprof::workloads
