#include "workloads/protowire/synthetic.h"

#include <gtest/gtest.h>

namespace hyperprof::protowire {
namespace {

TEST(SyntheticTest, SchemaIsDeterministicGivenSeed) {
  SyntheticSchemaParams params;
  SchemaPool pool_a, pool_b;
  Rng rng_a(5), rng_b(5);
  const Descriptor* a = GenerateSchema(pool_a, params, rng_a);
  const Descriptor* b = GenerateSchema(pool_b, params, rng_b);
  ASSERT_EQ(a->fields.size(), b->fields.size());
  for (size_t i = 0; i < a->fields.size(); ++i) {
    EXPECT_EQ(a->fields[i].type, b->fields[i].type);
    EXPECT_EQ(a->fields[i].repeated, b->fields[i].repeated);
    EXPECT_EQ(a->fields[i].number, b->fields[i].number);
  }
}

TEST(SyntheticTest, SchemaHasConfiguredShape) {
  SyntheticSchemaParams params;
  params.num_scalar_fields = 3;
  params.num_string_fields = 2;
  params.num_message_fields = 1;
  params.max_depth = 2;
  SchemaPool pool;
  Rng rng(7);
  const Descriptor* root = GenerateSchema(pool, params, rng);
  EXPECT_EQ(root->fields.size(), 6u);
  // Depth 0, 1, 2 -> 1 + 1 + 1 nested types minimum.
  EXPECT_GE(pool.size(), 3u);
  // At least one leaf type (depth == max) has no message fields.
  bool found_leaf = false;
  for (size_t i = 0; i < pool.size(); ++i) {
    bool has_message_field = false;
    for (const auto& field : pool.at(i)->fields) {
      if (field.type == FieldType::kMessage) has_message_field = true;
    }
    if (!has_message_field) found_leaf = true;
  }
  EXPECT_TRUE(found_leaf);
}

TEST(SyntheticTest, MessageFieldsCarryDescriptors) {
  SyntheticSchemaParams params;
  SchemaPool pool;
  Rng rng(9);
  const Descriptor* root = GenerateSchema(pool, params, rng);
  for (const auto& field : root->fields) {
    if (field.type == FieldType::kMessage) {
      EXPECT_NE(field.message_type, nullptr);
    } else {
      EXPECT_EQ(field.message_type, nullptr);
    }
  }
}

TEST(SyntheticTest, GeneratedMessagesRoundTrip) {
  SyntheticSchemaParams params;
  SchemaPool pool;
  Rng rng(11);
  const Descriptor* root = GenerateSchema(pool, params, rng);
  auto messages = GenerateMessages(root, params, 50, rng);
  for (const auto& message : messages) {
    WireBuffer wire = message->Serialize();
    EXPECT_EQ(wire.size(), message->ByteSize());
    auto parsed = Message::Parse(root, wire.data(), wire.size());
    ASSERT_NE(parsed, nullptr);
    EXPECT_TRUE(parsed->Equals(*message));
  }
}

TEST(SyntheticTest, MessagesVaryInSize) {
  SyntheticSchemaParams params;
  SchemaPool pool;
  Rng rng(13);
  const Descriptor* root = GenerateSchema(pool, params, rng);
  auto messages = GenerateMessages(root, params, 30, rng);
  size_t min_size = SIZE_MAX, max_size = 0;
  for (const auto& message : messages) {
    size_t size = message->ByteSize();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LT(min_size, max_size);
}

TEST(SyntheticTest, FieldPresenceZeroYieldsEmptyMessages) {
  SyntheticSchemaParams params;
  params.field_presence = 0.0;
  SchemaPool pool;
  Rng rng(17);
  const Descriptor* root = GenerateSchema(pool, params, rng);
  auto message = GenerateMessage(root, params, rng);
  EXPECT_EQ(message->ByteSize(), 0u);
}

}  // namespace
}  // namespace hyperprof::protowire
