#include "workloads/protowire/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperprof::protowire {
namespace {

TEST(VarintTest, KnownEncodings) {
  WireBuffer out;
  PutVarint(out, 0);
  EXPECT_EQ(out, (WireBuffer{0x00}));
  out.clear();
  PutVarint(out, 1);
  EXPECT_EQ(out, (WireBuffer{0x01}));
  out.clear();
  PutVarint(out, 127);
  EXPECT_EQ(out, (WireBuffer{0x7f}));
  out.clear();
  PutVarint(out, 128);
  EXPECT_EQ(out, (WireBuffer{0x80, 0x01}));
  out.clear();
  PutVarint(out, 300);
  EXPECT_EQ(out, (WireBuffer{0xac, 0x02}));
}

TEST(VarintTest, MaxValueUsesTenBytes) {
  WireBuffer out;
  PutVarint(out, ~0ULL);
  EXPECT_EQ(out.size(), 10u);
  WireReader reader(out);
  uint64_t value;
  ASSERT_TRUE(reader.GetVarint(&value));
  EXPECT_EQ(value, ~0ULL);
}

TEST(VarintTest, SizeMatchesEncoding) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t value = rng.Next() >> (rng.NextBounded(64));
    WireBuffer out;
    PutVarint(out, value);
    EXPECT_EQ(out.size(), VarintSize(value));
  }
}

class VarintRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(VarintRoundTripTest, RandomValuesAtBitWidth) {
  int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 7919);
  for (int i = 0; i < 500; ++i) {
    uint64_t value =
        bits == 0 ? 0 : (rng.Next() >> (64 - bits));
    WireBuffer out;
    PutVarint(out, value);
    WireReader reader(out);
    uint64_t decoded;
    ASSERT_TRUE(reader.GetVarint(&decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, VarintRoundTripTest,
                         ::testing::Values(0, 1, 7, 8, 14, 21, 32, 49, 63,
                                           64));

TEST(VarintTest, TruncatedInputFails) {
  WireBuffer out;
  PutVarint(out, 1ULL << 40);
  out.pop_back();
  WireReader reader(out);
  uint64_t value;
  EXPECT_FALSE(reader.GetVarint(&value));
}

TEST(VarintTest, RejectsOverflowingTenByteEncoding) {
  // Ten continuation-free bytes where the 10th carries more than the single
  // bit that fits at shift 63: accepting it would silently drop high bits.
  for (uint8_t tenth : {0x02, 0x7f, 0x40}) {
    WireBuffer bad(9, 0x80);
    bad.push_back(tenth);
    WireReader reader(bad);
    uint64_t value;
    EXPECT_FALSE(reader.GetVarint(&value))
        << "tenth=" << static_cast<int>(tenth);
  }
}

TEST(VarintTest, RejectsElevenByteEncoding) {
  // 10th byte keeps the continuation bit set: no valid uint64 varint is
  // longer than 10 bytes.
  WireBuffer bad(10, 0x80);
  bad.push_back(0x00);
  WireReader reader(bad);
  uint64_t value;
  EXPECT_FALSE(reader.GetVarint(&value));
}

TEST(VarintTest, TailPathRejectsTruncation) {
  // With fewer than 8 readable bytes the decoder takes its byte-at-a-time
  // tail path; an unterminated encoding there must fail, not read past the
  // end. Cover every short length.
  for (size_t len = 1; len <= 7; ++len) {
    WireBuffer bad(len, 0x80);  // all continuation bits set
    WireReader reader(bad);
    uint64_t value;
    EXPECT_FALSE(reader.GetVarint(&value)) << "len=" << len;
  }
}

TEST(VarintTest, TenByteBoundaryValuesDecode) {
  // Largest valid encodings: max uint64 and the smallest 10-byte value.
  for (uint64_t value : {~0ull, 1ull << 63}) {
    WireBuffer out;
    PutVarint(out, value);
    ASSERT_EQ(out.size(), 10u);
    uint64_t decoded;
    WireReader reader(out);
    ASSERT_TRUE(reader.GetVarint(&decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(ZigZagTest, KnownValues) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2147483647), 4294967294u);
  EXPECT_EQ(ZigZagEncode(-2147483648LL), 4294967295u);
}

TEST(ZigZagTest, RoundTripExtremes) {
  for (int64_t value : {int64_t{0}, int64_t{-1}, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(value)), value);
  }
}

TEST(SignedVarintTest, RoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t value = static_cast<int64_t>(rng.Next());
    WireBuffer out;
    PutSignedVarint(out, value);
    WireReader reader(out);
    int64_t decoded;
    ASSERT_TRUE(reader.GetSignedVarint(&decoded));
    EXPECT_EQ(decoded, value);
  }
}

TEST(FixedTest, RoundTrip) {
  WireBuffer out;
  PutFixed32(out, 0xdeadbeef);
  PutFixed64(out, 0x0123456789abcdefULL);
  WireReader reader(out);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(reader.GetFixed32(&v32));
  ASSERT_TRUE(reader.GetFixed64(&v64));
  EXPECT_EQ(v32, 0xdeadbeef);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
}

TEST(FixedTest, LittleEndianLayout) {
  WireBuffer out;
  PutFixed32(out, 0x01020304);
  EXPECT_EQ(out, (WireBuffer{0x04, 0x03, 0x02, 0x01}));
}

TEST(FixedTest, TruncatedFails) {
  WireBuffer out;
  PutFixed64(out, 1);
  out.resize(7);
  WireReader reader(out);
  uint64_t value;
  EXPECT_FALSE(reader.GetFixed64(&value));
}

TEST(TagTest, RoundTrip) {
  WireBuffer out;
  PutTag(out, 1, WireType::kVarint);
  PutTag(out, 16, WireType::kLengthDelimited);
  PutTag(out, 1000, WireType::kFixed64);
  WireReader reader(out);
  uint32_t number;
  WireType type;
  ASSERT_TRUE(reader.GetTag(&number, &type));
  EXPECT_EQ(number, 1u);
  EXPECT_EQ(type, WireType::kVarint);
  ASSERT_TRUE(reader.GetTag(&number, &type));
  EXPECT_EQ(number, 16u);
  EXPECT_EQ(type, WireType::kLengthDelimited);
  ASSERT_TRUE(reader.GetTag(&number, &type));
  EXPECT_EQ(number, 1000u);
  EXPECT_EQ(type, WireType::kFixed64);
}

TEST(TagTest, RejectsFieldNumberZero) {
  WireBuffer out;
  PutVarint(out, 0);  // tag with field number 0
  WireReader reader(out);
  uint32_t number;
  WireType type;
  EXPECT_FALSE(reader.GetTag(&number, &type));
}

TEST(TagTest, RejectsInvalidWireType) {
  WireBuffer out;
  PutVarint(out, (1 << 3) | 3);  // wire type 3 (deprecated group)
  WireReader reader(out);
  uint32_t number;
  WireType type;
  EXPECT_FALSE(reader.GetTag(&number, &type));
}

TEST(LengthDelimitedTest, RoundTrip) {
  WireBuffer out;
  PutLengthDelimited(out, std::string("hello"));
  WireReader reader(out);
  const uint8_t* data;
  size_t size;
  ASSERT_TRUE(reader.GetLengthDelimited(&data, &size));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(data), size),
            "hello");
}

TEST(LengthDelimitedTest, LengthBeyondBufferFails) {
  WireBuffer out;
  PutVarint(out, 100);  // claims 100 bytes follow
  out.push_back('x');
  WireReader reader(out);
  const uint8_t* data;
  size_t size;
  EXPECT_FALSE(reader.GetLengthDelimited(&data, &size));
}

TEST(SkipFieldTest, SkipsEveryWireType) {
  WireBuffer out;
  PutVarint(out, 12345);
  PutFixed64(out, 1);
  PutLengthDelimited(out, std::string("abc"));
  PutFixed32(out, 2);
  WireReader reader(out);
  EXPECT_TRUE(reader.SkipField(WireType::kVarint));
  EXPECT_TRUE(reader.SkipField(WireType::kFixed64));
  EXPECT_TRUE(reader.SkipField(WireType::kLengthDelimited));
  EXPECT_TRUE(reader.SkipField(WireType::kFixed32));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SkipFieldTest, TruncatedSkipFails) {
  WireBuffer out = {0x01, 0x02};
  WireReader reader(out);
  EXPECT_FALSE(reader.SkipField(WireType::kFixed64));
}

}  // namespace
}  // namespace hyperprof::protowire
